module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)

type mode = Protectionless | Slp

type config = {
  mode : mode;
  sink : int;
  num_slots : int;
  slot_period : float;
  dissemination_period : float;
  neighbour_discovery_periods : int;
  minimum_setup_periods : int;
  dissemination_timeout : int;
  search_distance : int;
  change_length : int;
  refine_gap : int;
  search_start_period : int;
  run_seed : int;
  data_sources : int list;
  reliable_data : bool;
}

let period_length c = float_of_int c.num_slots *. c.slot_period

let das_start c = float_of_int c.neighbour_discovery_periods *. period_length c

let normal_start c = float_of_int c.minimum_setup_periods *. period_length c

(* Number of dissemination rounds between the start of Phase 1 and normal
   operation. *)
let setup_rounds c =
  int_of_float (ceil ((normal_start c -. das_start c) /. c.dissemination_period))

(* Rounds during which self-repair enforces the strong DAS bound: up to the
   period at which the sink launches Phase 2. *)
let strong_repair_rounds c =
  let span =
    (float_of_int c.search_start_period *. period_length c) -. das_start c
  in
  int_of_float (ceil (span /. c.dissemination_period))

type state = {
  config : config;
  rng : Slpdas_util.Rng.t;
  neighbours : Int_set.t;
  npar : Int_set.t;
  children : Int_set.t;
  others : Int_set.t Int_map.t;
  ninfo : Messages.ninfo Int_map.t;
  unassigned_seen : Int_set.t;
  hop : int option;
  parent : int option;
  slot : int option;
  normal : bool;
  dissem_budget : int;
  last_sent : Messages.t option;
  dissem_rounds_left : int;
  process_rounds_left : int;
  search_sent : bool;
  from_ : Int_set.t;
  start_node : bool;
  pr : int;
  hello_remaining : int;
  data_seq : int;
  period_index : int;
  pending_readings : (int * int) list;
      (** readings collected since our last transmission, newest first *)
  awaiting_ack : (int * int) list;
      (** reliable mode: readings transmitted but not yet overheard in the
          parent's aggregate *)
  delivered : (int * int * int) list;
      (** sink only: (source, generation period, arrival period) *)
}

let slot_of_state s = s.slot

module Timer = struct
  let hello = Slpdas_gcn.Timer.intern "hello"
  let dissem = Slpdas_gcn.Timer.intern "dissem"
  let process = Slpdas_gcn.Timer.intern "process"
  let search = Slpdas_gcn.Timer.intern "search"
  let period = Slpdas_gcn.Timer.intern "period"
  let tx = Slpdas_gcn.Timer.intern "tx"
end

(* Per-node, per-round dissemination jitter: staggers the round's broadcasts
   so they do not all hit the channel at the same instant (needed when the
   engine models transmission airtime; harmless otherwise).  Derived from a
   stateless hash so it does not perturb the per-node random streams. *)
let dissem_jitter c ~node ~round =
  let r =
    Slpdas_util.Rng.create
      ((c.run_seed * 31) lxor (node * 2_097_593) lxor (round * 613))
  in
  Slpdas_util.Rng.float r (0.3 *. c.dissemination_period)

(* Run-salted deterministic hash: gives every (parent, child) pair a
   pseudo-random rank key that all siblings compute identically, standing in
   for the arrival-order noise that randomises ranks in the paper's TOSSIM
   runs. *)
let rank_key ~seed ~parent ~node =
  let r =
    Slpdas_util.Rng.create
      ((seed * 1_000_003) lxor (parent * 8191) lxor (node * 131))
  in
  Int64.to_int (Int64.logand (Slpdas_util.Rng.bits64 r) 0x3FFFFFFFFFFFFFFFL)

let ninfo_slot s v =
  match Int_map.find_opt v s.ninfo with
  | Some { Messages.slot; _ } -> Some slot
  | None -> None

let ninfo_hop s v =
  match Int_map.find_opt v s.ninfo with
  | Some { Messages.hop; _ } -> Some hop
  | None -> None

(* min{Ninfo[j].slot | j ∈ myN} ∪ {slot}: the neighbourhood slot floor used
   by Phase 3 (Figs. 3–4). *)
let neighbourhood_min_slot s =
  let candidates =
    Int_set.fold
      (fun v acc -> match ninfo_slot s v with Some x -> x :: acc | None -> acc)
      s.neighbours
      (match s.slot with Some x -> [ x ] | None -> [])
  in
  match candidates with
  | [] -> None
  | x :: rest -> Some (List.fold_left min x rest)

(* Monotone merge of received Ninfo: slots only ever decrease in this
   protocol (collision resolution, updates, refinement), so "lowest slot
   wins" keeps the freshest view; hop is set once by the owner.

   The one exception is the sender's entry about *itself*: that is the
   owner's current announcement, so it replaces ours outright.  In the
   fault-free run the two rules coincide (owners never raise a slot and
   never change their hop), but orphan repair re-anchors nodes onto new
   parents, changing their hop and re-assigning their slot.  Folding such
   an owner announcement through the monotone rule would keep the stale
   hop, and inconsistent hop views are what feed the strong-repair rule
   ("stay below every hop-1-closer neighbour") cyclic "closer" relations —
   two nodes each believing the other closer chase each other's slots down
   without bound.  With owner-consistent hops any such cycle needs
   h(a) < h(b) < ... < h(a), which is impossible. *)
let merge_info s ~sender info =
  List.fold_left
    (fun (ninfo, unassigned) (v, entry) ->
      match entry with
      | None -> (ninfo, Int_set.add v unassigned)
      | Some (incoming : Messages.ninfo) ->
        let merged =
          if v = sender then incoming
          else
            match Int_map.find_opt v ninfo with
            | None -> incoming
            | Some existing ->
              { existing with Messages.slot = min existing.Messages.slot incoming.Messages.slot }
        in
        (Int_map.add v merged ninfo, unassigned))
    (s.ninfo, s.unassigned_seen)
    info

let set_self_info ~self s =
  match (s.hop, s.slot) with
  | Some hop, Some slot ->
    { s with ninfo = Int_map.add self { Messages.hop; slot } s.ninfo }
  | Some hop, None when self = s.config.sink ->
    {
      s with
      ninfo = Int_map.add self { Messages.hop; slot = s.config.num_slots } s.ninfo;
    }
  | _ -> s

(* ------------------------------------------------------------------ *)
(* Dissemination payload                                              *)
(* ------------------------------------------------------------------ *)

let dissem_payload ~self s =
  let entries =
    List.map
      (fun v -> (v, Int_map.find_opt v s.ninfo))
      (Int_set.elements s.neighbours)
  in
  let self_entry = (self, Int_map.find_opt self s.ninfo) in
  Messages.Dissem { normal = s.normal; info = entries @ [ self_entry ]; parent = s.parent }

(* ------------------------------------------------------------------ *)
(* Receive handlers                                                   *)
(* ------------------------------------------------------------------ *)

let on_hello ~self:_ s ~sender =
  { s with neighbours = Int_set.add sender s.neighbours }

let common_dissem_update ~self s ~sender ~info ~sender_parent =
  let s = { s with neighbours = Int_set.add sender s.neighbours } in
  let children =
    if sender_parent = Some self then Int_set.add sender s.children
    else if sender_parent <> None then Int_set.remove sender s.children
    else s.children
  in
  let ninfo, unassigned_seen = merge_info s ~sender info in
  (* A sender advertising *itself* as ⊥ has dropped its assignment (orphan
     repair; see [on_neighbour_down]).  The monotone merge above cannot
     express that — slots only ever decrease — so trust the owner and purge
     our stale record: its old slot must not seed [choose_parent_and_slot]
     again, and the payload change this causes is what re-arms our own
     dissemination budget so converged nodes answer the orphan's ⊥
     announcement.  Third-party [None] entries (neighbours the sender merely
     has not heard from) are still only recorded in [unassigned_seen]. *)
  let sender_unassigned =
    List.exists (fun (v, e) -> v = sender && e = None) info
  in
  let ninfo = if sender_unassigned then Int_map.remove sender ninfo else ninfo in
  let npar = if sender_unassigned then Int_set.remove sender s.npar else s.npar in
  { s with children; ninfo; unassigned_seen; npar }

(* Record an assigned sender as a potential parent, together with the
   competitor set its payload reveals (the [Others] map that later decides
   our rank, hence our collision-free slot).  Never a child: re-parenting
   onto one's own convergecast child is a cycle.  In the fault-free run the
   guard is vacuous — an unassigned node cannot have children because no
   neighbour adopts a slotless parent — but during orphan repair our
   children do re-disseminate while we are slotless. *)
let record_candidate s ~sender ~info =
  let competitors =
    List.filter_map (fun (v, e) -> if e = None then Some v else None) info
  in
  let others =
    let existing =
      Option.value ~default:Int_set.empty (Int_map.find_opt sender s.others)
    in
    Int_map.add sender
      (List.fold_left (fun acc v -> Int_set.add v acc) existing competitors)
      s.others
  in
  { s with npar = Int_set.add sender s.npar; others }

let sender_assigned_in ~sender info =
  List.exists (fun (v, e) -> v = sender && e <> None) info

(* receiveN of Fig. 2: a normal dissemination. *)
let on_dissem_normal ~self s ~sender ~info ~sender_parent =
  let s =
    if
      s.slot = None
      && sender_assigned_in ~sender info
      && not (Int_set.mem sender s.children)
    then record_candidate s ~sender ~info
    else s
  in
  common_dissem_update ~self s ~sender ~info ~sender_parent

(* Weak-DAS check from local knowledge: does some neighbour (or the sink)
   transmit later than us?  While it does, our data still makes progress and
   no repair is needed (Def. 3). *)
let has_forwarder ~self:_ s ~mine =
  Int_set.exists
    (fun m ->
      m = s.config.sink
      || match ninfo_slot s m with Some ms -> ms > mine | None -> false)
    s.neighbours

(* receiveU of Fig. 2: an update dissemination from the parent re-lowers our
   slot and cascades the update phase — but only when the change actually
   broke the (weak) DAS property for us.  An unconditional below-parent
   cascade would re-create a descending gradient under every decoy node of
   Phase 3 and escort the attacker onwards, defeating the redirection the
   update is meant to protect. *)
let on_dissem_update ~self s ~sender ~info ~sender_parent =
  let s = common_dissem_update ~self s ~sender ~info ~sender_parent in
  (* During orphan repair ([slot = None] while in update mode, a state the
     fault-free protocol never reaches) the neighbours we can re-anchor to
     mostly announce themselves through *update* disseminations — they are
     repairing too.  receiveN's potential-parent recording would miss them,
     so replicate it here.  [s.children] is already refreshed by
     [common_dissem_update], so a released child that re-anchored elsewhere
     (its [parent] points away from us) is admissible again. *)
  let s =
    if
      s.slot = None && (not s.normal)
      && self <> s.config.sink
      && sender_assigned_in ~sender info
      && (not (Int_set.mem sender s.children))
      && sender_parent <> Some self
    then record_candidate s ~sender ~info
    else s
  in
  let sender_slot =
    List.find_map
      (fun (v, e) ->
        if v = sender then Option.map (fun n -> n.Messages.slot) e else None)
      info
  in
  match (s.parent, s.slot, sender_slot) with
  | Some p, Some mine, Some ps
    when p = sender && mine >= ps && not (has_forwarder ~self s ~mine) ->
    let s = { s with slot = Some (ps - 1); normal = false } in
    let s = set_self_info ~self s in
    { s with dissem_budget = s.config.dissemination_timeout }
  | _ -> s

(* receiveF: the failure detector reports a crashed neighbour.  The paper
   assumes TOSSIM's static neighbourhoods; here an idealised link-layer
   detector (driven by the fault injector, [Slpdas_fault.Injector]) tells
   each surviving neighbour of a crash-stop after a detection delay.  The
   reaction is a pure purge: forget everything known about the dead node,
   and if it was our parent, drop our own assignment and re-enter Phase-1
   provisioning — the next process round re-parents us through
   [choose_parent_and_slot] among the surviving potential parents, and the
   resulting update dissemination cascades the repair to our children
   (receiveU).  Slots never rise, so the monotone-merge invariant holds. *)
(* Drop our assignment and re-enter Phase-1 provisioning.  The shared tail
   of losing a parent to a crash (receiveF below) and being detached by a
   [Release] token (receiveR).  Dropping the self Ninfo entry makes our next
   dissemination advertise ⊥ again — and [on_dissem_timer] lets a slotless
   update-mode node disseminate precisely so that this ⊥ announcement goes
   out: converged neighbours have exhausted their budget and would otherwise
   never re-disseminate, leaving the orphan nothing to overhear.  Hearing
   our ⊥ purges their record of us ([common_dissem_update]), changes their
   payload, re-arms their budget, and their answering disseminations rebuild
   [npar] with fresh slots and competitor sets.  Own children are flushed
   from [npar] (re-parenting onto one is a convergecast cycle).

   If every surviving neighbour is one of our own children, no answer can
   help — each would have to route through us.  Hand the problem down
   instead: detach the best-placed child with a [Release] token.  It
   re-anchors through its own neighbourhood (recursing if needed; the
   recursion descends the finite convergecast tree, so it terminates) and
   once it disseminates its new assignment we adopt it as our parent. *)
let orphan ~self s =
  let s =
    {
      s with
      parent = None;
      slot = None;
      hop = None;
      normal = false;
      dissem_budget = s.config.dissemination_timeout;
      ninfo = Int_map.remove self s.ninfo;
      npar = Int_set.diff s.npar s.children;
    }
  in
  if
    (not (Int_set.is_empty s.neighbours))
    && Int_set.subset s.neighbours s.children
  then begin
    let best =
      Int_set.fold
        (fun c acc ->
          let key = ((match ninfo_hop s c with Some h -> h | None -> max_int), c) in
          match acc with
          | Some best when Slpdas_util.Order.int_pair best key <= 0 -> acc
          | _ -> Some key)
        s.neighbours None
    in
    match best with
    | None -> (s, [])
    | Some (_, c) ->
      ( { s with children = Int_set.remove c s.children },
        [ Slpdas_gcn.Broadcast (Messages.Release { target = c }) ] )
  end
  else (s, [])

let on_neighbour_down ~self s ~dead =
  if dead = self then (s, [])
  else begin
    let s =
      {
        s with
        neighbours = Int_set.remove dead s.neighbours;
        npar = Int_set.remove dead s.npar;
        children = Int_set.remove dead s.children;
        others =
          Int_map.filter_map
            (fun p competitors ->
              if p = dead then None else Some (Int_set.remove dead competitors))
            s.others;
        ninfo = Int_map.remove dead s.ninfo;
        unassigned_seen = Int_set.remove dead s.unassigned_seen;
        from_ = Int_set.remove dead s.from_;
      }
    in
    if s.parent = Some dead && self <> s.config.sink then orphan ~self s
    else (s, [])
  end

(* receiveR: our parent became an orphan whose only surviving neighbours are
   its children, and it picked us to detach (see [orphan]).  Forget its
   (now meaningless) assignment and rejoin Phase 1 ourselves — unlike
   receiveF the ex-parent is alive, so it stays in [neighbours]; it will
   re-adopt us as *its* parent once we re-anchor and disseminate. *)
let on_release ~self s ~sender ~target =
  if target <> self || s.parent <> Some sender then (s, [])
  else
    orphan ~self
      {
        s with
        npar = Int_set.remove sender s.npar;
        ninfo = Int_map.remove sender s.ninfo;
      }

(* ------------------------------------------------------------------ *)
(* Phase 1 process action (end of each dissemination round)           *)
(* ------------------------------------------------------------------ *)

let choose_parent_and_slot ~self s =
  if s.slot <> None || Int_set.is_empty s.npar then s
  else begin
    let hops =
      Int_set.fold
        (fun k acc ->
          if Int_set.mem k s.children then acc
          else
            match ninfo_hop s k with Some h -> (k, h) :: acc | None -> acc)
        s.npar []
    in
    match hops with
    | [] -> s
    | (k0, h0) :: rest ->
      let min_hop = List.fold_left (fun acc (_, h) -> min acc h) h0 rest in
      let candidates =
        List.filter_map
          (fun (k, h) -> if h = min_hop then Some k else None)
          ((k0, h0) :: rest)
        |> List.sort Int.compare
      in
      let parent = Slpdas_util.Rng.choose s.rng candidates in
      let competitors =
        Int_set.add self
          (Option.value ~default:Int_set.empty (Int_map.find_opt parent s.others))
      in
      let order =
        Int_set.elements competitors
        |> List.map (fun v ->
               (rank_key ~seed:s.config.run_seed ~parent ~node:v, v))
        |> List.sort Slpdas_util.Order.int_pair
        |> List.map snd
      in
      let rec index i = function
        | [] -> 0
        | v :: rest -> if v = self then i else index (i + 1) rest
      in
      let rank = index 0 order in
      let parent_slot =
        match ninfo_slot s parent with Some x -> x | None -> s.config.num_slots
      in
      let slot = parent_slot - rank - 1 in
      let s =
        {
          s with
          hop = Some (min_hop + 1);
          parent = Some parent;
          slot = Some slot;
          dissem_budget = s.config.dissemination_timeout;
        }
      in
      set_self_info ~self s
  end

(* Self-repair: keep our slot strictly below the parent's (update mode), and
   resolve one detected 2-hop collision per round (Fig. 2 process action).
   Any self slot decrease re-enters update mode so children repair too.

   While [strong] holds (before Phase 2 begins) the bound is the minimum
   over every known hop-1-closer neighbour, which makes the converged
   schedule a strong DAS (Def. 2).  From the search period onwards only the
   chosen parent bounds us, so Phase 3's decoy gradient — which deliberately
   sits below nodes whose shortest-path parent it is — survives (the refined
   schedule is a weak DAS, Def. 3). *)
let repair_slot ~self ~strong s =
  match s.slot with
  | None -> s
  | Some mine ->
    let parent_bound =
      match s.parent with
      | Some p ->
        begin match ninfo_slot s p with
        | Some ps when mine >= ps -> Some (ps - 1)
        | Some _ | None -> None
        end
      | None -> None
    in
    let lowered =
      if not strong then
        (* Weak mode (from Phase 2 onwards): repair only an actual weak-DAS
           violation, for the same reason as in [on_dissem_update]. *)
        if has_forwarder ~self s ~mine then None else parent_bound
      else begin
        let my_hop = Option.value ~default:max_int s.hop in
        (* Own children never bound us from below.  After an orphan
           re-anchors on a longer path its hop can exceed a child's (the
           child kept the hop of the old, shorter tree), and "stay below
           the hop-closer child" then contradicts the child's own
           stay-below-the-parent bound — the pair would chase each other's
           slots down without bound.  The child's data reaches us by the
           tree edge regardless of its hop, so the constraint buys nothing.
           Fault-free schedules never trigger this: a child's hop is always
           parent hop + 1 there. *)
        let closer_min =
          Int_set.fold
            (fun v acc ->
              if Int_set.mem v s.children then acc
              else
                match Int_map.find_opt v s.ninfo with
                | Some { Messages.hop; slot } when hop = my_hop - 1 ->
                  Some (match acc with None -> slot | Some m -> min m slot)
                | Some _ | None -> acc)
            s.neighbours None
        in
        match (parent_bound, closer_min) with
        | _, Some bound when mine >= bound ->
          let candidate = bound - 1 in
          Some
            (match parent_bound with
            | Some pb -> min pb candidate
            | None -> candidate)
        | pb, _ -> pb
      end
    in
    let lowered =
      match lowered with
      | Some _ -> lowered
      | None ->
        let my_hop = Option.value ~default:max_int s.hop in
        let key v =
          Das_build.node_order_key ~salt:s.config.run_seed v
        in
        let collision =
          Int_map.exists
            (fun j { Messages.hop = jh; slot = js } ->
              j <> self && js = mine
              && (my_hop, key self, self) > (jh, key j, j))
            s.ninfo
        in
        if collision then Some (mine - 1) else None
    in
    begin match lowered with
    | None -> s
    | Some slot ->
      let s =
        {
          s with
          slot = Some slot;
          normal = false;
          dissem_budget = s.config.dissemination_timeout;
        }
      in
      set_self_info ~self s
    end

(* ------------------------------------------------------------------ *)
(* Phases 2 and 3                                                     *)
(* ------------------------------------------------------------------ *)

let min_slot_child s =
  let candidates =
    Int_set.fold
      (fun c acc ->
        match ninfo_slot s c with Some x -> (x, c) :: acc | None -> acc)
      s.children []
  in
  match List.sort Slpdas_util.Order.int_pair candidates with
  | [] -> None
  | (_, c) :: _ -> Some c

let alternates s =
  let base = Int_set.diff s.npar s.from_ in
  match s.parent with Some p -> Int_set.remove p base | None -> base

(* receiveS of Fig. 3. *)
let on_search ~self s ~sender ~target ~ttl =
  let s = { s with from_ = Int_set.add sender s.from_ } in
  if self <> target then (s, [])
  else if ttl > 0 then begin
    let next =
      match min_slot_child s with
      | Some c -> Some c
      | None ->
        (* No children: fall back to the lowest-slotted neighbour that is
           neither our parent nor on the search path. *)
        let eligible =
          Int_set.elements
            (Int_set.diff
               (match s.parent with
               | Some p -> Int_set.remove p s.neighbours
               | None -> s.neighbours)
               s.from_)
          |> List.filter_map (fun v ->
                 Option.map (fun x -> (x, v)) (ninfo_slot s v))
          |> List.sort Slpdas_util.Order.int_pair
        in
        (match eligible with [] -> None | (_, v) :: _ -> Some v)
    in
    match next with
    | None -> (s, [])
    | Some next ->
      (s, [ Slpdas_gcn.Broadcast (Messages.Search { target = next; ttl = ttl - 1 }) ])
  end
  else if not (Int_set.is_empty (alternates s)) then
    ({ s with start_node = true; pr = s.config.change_length }, [])
  else begin
    (* ttl = 0 with no alternate parent: keep forwarding until a suitable
       node is found (Fig. 3, final branch). *)
    let eligible set = Int_set.elements (Int_set.diff set s.from_) in
    let pool =
      match eligible s.children with
      | [] ->
        eligible
          (match s.parent with
          | Some p -> Int_set.remove p s.neighbours
          | None -> s.neighbours)
      | children -> children
    in
    match pool with
    | [] -> (s, [])
    | pool ->
      let next = Slpdas_util.Rng.choose s.rng pool in
      (s, [ Slpdas_gcn.Broadcast (Messages.Search { target = next; ttl = 0 }) ])
  end

(* startR of Fig. 4 (spontaneous: fires once when selected). *)
let start_refine ~self:_ s =
  let s = { s with start_node = false } in
  match Int_set.elements (alternates s) with
  | [] -> (s, [])
  | candidates ->
    let target = Slpdas_util.Rng.choose s.rng candidates in
    begin match neighbourhood_min_slot s with
    | None -> (s, [])
    | Some base_slot ->
      ( s,
        [
          Slpdas_gcn.Broadcast
            (Messages.Change { target; base_slot; ttl = s.pr - 1 });
        ] )
    end

(* receiveC of Fig. 4. *)
let on_change ~self s ~sender ~target ~base_slot ~ttl =
  let s = { s with from_ = Int_set.add sender s.from_ } in
  if self <> target then (s, [])
  else begin
    (* Take a slot below everything audible around the nominator and enter
       update mode so our children repair (§V text).  In a well-formed chain
       [base_slot] already includes us (we neighbour the nominator), so the
       [min] is a no-op there; it hardens against stray or corrupt tokens
       raising a slot, which nothing in this protocol may ever do. *)
    let s =
      {
        s with
        slot =
          Some
            (match s.slot with
            | Some mine -> min mine (base_slot - s.config.refine_gap)
            | None -> base_slot - s.config.refine_gap);
        normal = false;
        dissem_budget = s.config.dissemination_timeout;
      }
    in
    let s = set_self_info ~self s in
    if ttl <= 0 then (s, [])
    else begin
      let pool =
        Int_set.elements
          (Int_set.diff
             (match s.parent with
             | Some p -> Int_set.remove p s.neighbours
             | None -> s.neighbours)
             s.from_)
      in
      match pool with
      | [] -> (s, [])
      | pool ->
        let next = Slpdas_util.Rng.choose s.rng pool in
        begin match neighbourhood_min_slot s with
        | None -> (s, [])
        | Some base_slot ->
          ( s,
            [
              Slpdas_gcn.Broadcast
                (Messages.Change { target = next; base_slot; ttl = ttl - 1 });
            ] )
        end
    end
  end

(* ------------------------------------------------------------------ *)
(* Timer handlers                                                     *)
(* ------------------------------------------------------------------ *)

let on_hello_timer s =
  if s.hello_remaining <= 0 then (s, [])
  else
    ( { s with hello_remaining = s.hello_remaining - 1 },
      [
        Slpdas_gcn.Broadcast Messages.Hello;
        Slpdas_gcn.Set_timer { timer = Timer.hello; after = period_length s.config };
      ] )

let on_dissem_timer ~self s =
  (* Firing at round r (jittered); rearm for round r+1 so that the absolute
     fire times are das_start + r·Pdiss + jitter(r). *)
  let round = setup_rounds s.config - s.dissem_rounds_left in
  let rearm =
    if s.dissem_rounds_left > 1 then
      [
        Slpdas_gcn.Set_timer
          {
            timer = Timer.dissem;
            after =
              s.config.dissemination_period
              -. dissem_jitter s.config ~node:self ~round
              +. dissem_jitter s.config ~node:self ~round:(round + 1);
          };
      ]
    else []
  in
  let s = { s with dissem_rounds_left = s.dissem_rounds_left - 1 } in
  (* A slotless node in update mode is an orphan mid-repair (see [orphan]):
     it must broadcast its ⊥ announcement or converged neighbours never
     learn they have to answer.  Slotless *normal*-mode nodes are ordinary
     Phase-1 joiners and stay silent, as in the paper. *)
  let repairing = s.slot = None && (not s.normal) && self <> s.config.sink in
  let eligible = s.slot <> None || self = s.config.sink || repairing in
  if not eligible then (s, rearm)
  else begin
    let payload = dissem_payload ~self s in
    let changed = s.last_sent <> Some payload in
    let budget =
      if changed then s.config.dissemination_timeout else s.dissem_budget
    in
    if budget <= 0 then (s, rearm)
    else begin
      let s =
        {
          s with
          dissem_budget = budget - 1;
          last_sent = Some payload;
          (* an update dissemination is sent once, then we return to normal
             — except mid-repair, where update mode must persist until we
             re-anchor (it is what keeps us eligible here and lets receiveU
             record answering neighbours as potential parents) *)
          normal = (if repairing then s.normal else true);
        }
      in
      (s, Slpdas_gcn.Broadcast payload :: rearm)
    end
  end

let on_process_timer ~self s =
  let rearm =
    if s.process_rounds_left > 1 then
      [
        Slpdas_gcn.Set_timer
          { timer = Timer.process; after = s.config.dissemination_period };
      ]
    else []
  in
  let s = { s with process_rounds_left = s.process_rounds_left - 1 } in
  if self = s.config.sink then (s, rearm)
  else begin
    let rounds_elapsed = setup_rounds s.config - s.process_rounds_left in
    let strong =
      s.config.mode = Protectionless
      || rounds_elapsed < strong_repair_rounds s.config
    in
    let s = choose_parent_and_slot ~self s in
    let s = repair_slot ~self ~strong s in
    (s, rearm)
  end

let on_search_timer ~self s =
  if self <> s.config.sink || s.search_sent || s.config.mode <> Slp then (s, [])
  else begin
    match min_slot_child s with
    | None -> (s, [])
    | Some target ->
      ( { s with search_sent = true },
        [
          Slpdas_gcn.Broadcast
            (Messages.Search { target; ttl = s.config.search_distance });
        ] )
  end

let on_period_timer ~self s =
  let s = { s with period_index = s.period_index + 1 } in
  (* Reliable mode: readings whose snoop-ack never arrived are retried in
     this period's transmission. *)
  let s =
    if s.config.reliable_data && s.awaiting_ack <> [] then
      {
        s with
        pending_readings =
          List.rev_append
            (List.filter
               (fun r -> not (List.mem r s.pending_readings))
               s.awaiting_ack)
            s.pending_readings;
        awaiting_ack = [];
      }
    else s
  in
  (* Sources sense the asset once per period (§VI-A); the reading enters the
     aggregate this node will transmit in its slot. *)
  let s =
    if List.mem self s.config.data_sources then
      { s with pending_readings = (self, s.period_index) :: s.pending_readings }
    else s
  in
  let effects =
    [
      Slpdas_gcn.Set_timer
        { timer = Timer.period; after = period_length s.config };
    ]
  in
  if self = s.config.sink then (s, effects)
  else begin
    match s.slot with
    | None -> (s, effects)
    | Some slot ->
      let offset = float_of_int (max slot 0) *. s.config.slot_period in
      (s, Slpdas_gcn.Set_timer { timer = Timer.tx; after = offset } :: effects)
  end

let on_tx_timer ~self s =
  let readings = List.rev s.pending_readings in
  let payload = Messages.Data { origin = self; seq = s.data_seq; readings } in
  let awaiting_ack =
    if s.config.reliable_data then readings @ s.awaiting_ack else []
  in
  ( { s with data_seq = s.data_seq + 1; pending_readings = []; awaiting_ack },
    [ Slpdas_gcn.Broadcast payload ] )

(* Convergecast aggregation: a parent folds in the aggregates its children
   transmit; the sink records each reading's arrival period (deduplicating,
   since reliable-mode retries can arrive twice); and in reliable mode a
   child overhearing its own readings inside its parent's aggregate treats
   that as an implicit acknowledgement. *)
let on_data ~self s ~sender ~readings =
  let s =
    if
      s.config.reliable_data
      && s.parent = Some sender
      && s.awaiting_ack <> []
    then
      {
        s with
        awaiting_ack =
          List.filter (fun r -> not (List.mem r readings)) s.awaiting_ack;
      }
    else s
  in
  if not (Int_set.mem sender s.children) then s
  else if self = s.config.sink then
    {
      s with
      delivered =
        List.fold_left
          (fun acc (origin, generation) ->
            if
              List.exists
                (fun (o, g, _) -> o = origin && g = generation)
                acc
            then acc
            else (origin, generation, s.period_index) :: acc)
          s.delivered readings;
    }
  else begin
    let fresh =
      List.filter (fun r -> not (List.mem r s.pending_readings)) readings
    in
    { s with pending_readings = List.rev_append fresh s.pending_readings }
  end

(* ------------------------------------------------------------------ *)
(* Program assembly                                                   *)
(* ------------------------------------------------------------------ *)

let extract_schedule ~n config state_of =
  let schedule = Schedule.create ~n ~sink:config.sink in
  for v = 0 to n - 1 do
    if v <> config.sink then begin
      match (state_of v).slot with
      | Some s -> Schedule.assign schedule v s
      | None -> ()
    end
  done;
  schedule

let initial_state config ~self =
  let rng =
    Slpdas_util.Rng.create ((config.run_seed * 7_368_787) lxor (self * 65_599))
  in
  let base =
    {
      config;
      rng;
      neighbours = Int_set.empty;
      npar = Int_set.empty;
      children = Int_set.empty;
      others = Int_map.empty;
      ninfo = Int_map.empty;
      unassigned_seen = Int_set.empty;
      hop = None;
      parent = None;
      slot = None;
      normal = true;
      dissem_budget = config.dissemination_timeout;
      last_sent = None;
      dissem_rounds_left = setup_rounds config;
      process_rounds_left = setup_rounds config;
      search_sent = false;
      from_ = Int_set.empty;
      start_node = false;
      pr = 0;
      hello_remaining = config.neighbour_discovery_periods;
      data_seq = 0;
      period_index = -1;
      pending_readings = [];
      awaiting_ack = [];
      delivered = [];
    }
  in
  if self = config.sink then
    set_self_info ~self { base with hop = Some 0 }
  else base

let program config ~self:_ =
  let process_slack = 0.8 in
  let init ~self =
    let s = initial_state config ~self in
    let hello_offset =
      Slpdas_util.Rng.float s.rng (period_length config *. 0.5)
    in
    let effects =
      [
        Slpdas_gcn.Set_timer { timer = Timer.hello; after = hello_offset };
        Slpdas_gcn.Set_timer
          {
            timer = Timer.dissem;
            after = das_start config +. dissem_jitter config ~node:self ~round:0;
          };
        Slpdas_gcn.Set_timer
          {
            timer = Timer.process;
            after = das_start config +. (config.dissemination_period *. process_slack);
          };
        Slpdas_gcn.Set_timer { timer = Timer.period; after = normal_start config };
      ]
    in
    let effects =
      if self = config.sink && config.mode = Slp then
        effects
        @ [
            Slpdas_gcn.Set_timer
              {
                timer = Timer.search;
                after =
                  float_of_int config.search_start_period *. period_length config;
              };
          ]
      else effects
    in
    (s, effects)
  in
  let receive name f =
    {
      Slpdas_gcn.name;
      handler =
        (fun ~self s trigger ->
          match trigger with
          | Slpdas_gcn.Receive { sender; msg } -> f ~self s ~sender msg
          | Slpdas_gcn.Timeout _ | Slpdas_gcn.Round_end -> None);
    }
  in
  let timeout name timer f =
    {
      Slpdas_gcn.name;
      handler =
        (fun ~self s trigger ->
          match trigger with
          | Slpdas_gcn.Timeout t when Slpdas_gcn.Timer.equal t timer ->
            Some (f ~self s)
          | Slpdas_gcn.Timeout _ | Slpdas_gcn.Receive _ | Slpdas_gcn.Round_end
            -> None);
    }
  in
  let actions =
    [
      receive "receiveHello" (fun ~self s ~sender msg ->
          match msg with
          | Messages.Hello -> Some (on_hello ~self s ~sender, [])
          | _ -> None);
      receive "receiveN" (fun ~self s ~sender msg ->
          match msg with
          | Messages.Dissem { normal = true; info; parent } ->
            Some (on_dissem_normal ~self s ~sender ~info ~sender_parent:parent, [])
          | _ -> None);
      receive "receiveU" (fun ~self s ~sender msg ->
          match msg with
          | Messages.Dissem { normal = false; info; parent } ->
            Some (on_dissem_update ~self s ~sender ~info ~sender_parent:parent, [])
          | _ -> None);
      receive "receiveS" (fun ~self s ~sender msg ->
          match msg with
          | Messages.Search { target; ttl } when s.config.mode = Slp ->
            Some (on_search ~self s ~sender ~target ~ttl)
          | _ -> None);
      receive "receiveC" (fun ~self s ~sender msg ->
          match msg with
          | Messages.Change { target; base_slot; ttl } when s.config.mode = Slp ->
            Some (on_change ~self s ~sender ~target ~base_slot ~ttl)
          | _ -> None);
      receive "receiveData" (fun ~self s ~sender msg ->
          match msg with
          | Messages.Data { readings; _ } ->
            Some (on_data ~self s ~sender ~readings, [])
          | _ -> None);
      receive "receiveF" (fun ~self s ~sender:_ msg ->
          match msg with
          | Messages.Neighbour_down dead -> Some (on_neighbour_down ~self s ~dead)
          | _ -> None);
      receive "receiveR" (fun ~self s ~sender msg ->
          match msg with
          | Messages.Release { target } -> Some (on_release ~self s ~sender ~target)
          | _ -> None);
      timeout "hello" Timer.hello (fun ~self:_ s -> on_hello_timer s);
      timeout "dissem" Timer.dissem (fun ~self s -> on_dissem_timer ~self s);
      timeout "process" Timer.process (fun ~self s -> on_process_timer ~self s);
      timeout "startS" Timer.search (fun ~self s -> on_search_timer ~self s);
      timeout "period" Timer.period (fun ~self s -> on_period_timer ~self s);
      timeout "tx" Timer.tx (fun ~self s -> on_tx_timer ~self s);
    ]
  in
  let spontaneous =
    [
      {
        Slpdas_gcn.sname = "startR";
        sguard = (fun s -> s.start_node);
        scommand = (fun ~self s -> start_refine ~self s);
      };
    ]
  in
  { Slpdas_gcn.init; actions; spontaneous }
