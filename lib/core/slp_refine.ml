type result = {
  refined : Schedule.t;
  search_path : int list;
  start_node : int;
  change_path : int list;
}

module Int_set = Set.Make (Int)

let choose rng = function
  | [] -> None
  | candidates ->
    begin match rng with
    | None -> Some (List.fold_left min (List.hd candidates) candidates)
    | Some r -> Some (Slpdas_util.Rng.choose r candidates)
    end

(* Children of [v] in the aggregation tree built by Phase 1. *)
let children parent v =
  let acc = ref [] in
  Array.iteri (fun u p -> if p = Some v then acc := u :: !acc) parent;
  List.rev !acc

let slot_view schedule ~delta v =
  if v = Schedule.sink schedule then Some delta else Schedule.slot schedule v

(* min{Ninfo[j].slot | j ∈ myN} ∪ {slot}: the audible slot floor around
   [v]. *)
let neighbourhood_min g schedule ~delta v =
  let candidates =
    List.filter_map
      (slot_view schedule ~delta)
      (v :: Slpdas_wsn.Graph.neighbour_list g v)
  in
  match candidates with
  | [] -> None
  | x :: rest -> Some (List.fold_left min x rest)

let min_slot_child schedule parent v =
  children parent v
  |> List.filter_map (fun c ->
         Option.map (fun s -> (s, c)) (Schedule.slot schedule c))
  |> List.sort Slpdas_util.Order.int_pair
  |> function
  | [] -> None
  | (_, c) :: _ -> Some c

let refine ?rng ?(gap = 1) g ~das ~search_distance ~change_length =
  if search_distance < 1 then invalid_arg "Slp_refine: search_distance < 1";
  if change_length < 1 then invalid_arg "Slp_refine: change_length < 1";
  if gap < 1 then invalid_arg "Slp_refine: gap < 1";
  let delta = Das_build.default_delta in
  let schedule = Schedule.copy das.Das_build.schedule in
  let parent = das.Das_build.parent in
  let sink = Schedule.sink schedule in
  (* Phase 2: descend minimum-slot children for [search_distance] hops. *)
  let rec descend cur remaining visited path =
    if remaining = 0 then Some (cur, visited, path)
    else begin
      let next =
        match min_slot_child schedule parent cur with
        | Some c -> Some c
        | None ->
          (* No children: lowest-slotted neighbour off the path. *)
          Slpdas_wsn.Graph.neighbour_list g cur
          |> List.filter (fun v ->
                 (not (Int_set.mem v visited)) && Some v <> parent.(cur))
          |> List.filter_map (fun v ->
                 Option.map (fun s -> (s, v)) (Schedule.slot schedule v))
          |> List.sort Slpdas_util.Order.int_pair
          |> (function [] -> None | (_, v) :: _ -> Some v)
      in
      match next with
      | None -> None
      | Some next ->
        descend next (remaining - 1) (Int_set.add next visited) (next :: path)
    end
  in
  let alternates visited v =
    Slpdas_wsn.Graph.shortest_path_parents g ~dist:das.Das_build.hop v
    |> List.filter (fun p -> Some p <> parent.(v) && not (Int_set.mem p visited))
  in
  (* After [search_distance] hops, keep forwarding until some node has an
     alternate potential parent (the ttl = 0 branch of Fig. 3). *)
  let rec find_start cur visited path fuel =
    if fuel = 0 then None
    else if alternates visited cur <> [] then Some (cur, visited, path)
    else begin
      (* Fig. 3's ttl = 0 forwarding: a child if any, else a non-parent
         neighbour.  Prefer unvisited nodes so the deterministic mode does
         not ricochet; fall back to visited ones (the figure permits it)
         under the fuel bound. *)
      let unvisited = List.filter (fun c -> not (Int_set.mem c visited)) in
      let neighbours_pool =
        Slpdas_wsn.Graph.neighbour_list g cur
        |> List.filter (fun v -> Some v <> parent.(cur))
      in
      let pool =
        match unvisited (children parent cur) with
        | [] ->
          begin match unvisited neighbours_pool with
          | [] -> neighbours_pool
          | vs -> vs
          end
        | cs -> cs
      in
      match choose rng pool with
      | None -> None
      | Some next ->
        find_start next (Int_set.add next visited) (next :: path) (fuel - 1)
    end
  in
  match descend sink search_distance (Int_set.singleton sink) [ sink ] with
  | None -> None
  | Some (reached, visited, path) ->
    begin match
      find_start reached visited path (Slpdas_wsn.Graph.n g)
    with
    | None -> None
    | Some (start_node, visited, path) ->
      let search_path = List.rev path in
      (* Phase 3: walk the decoy chain. *)
      begin match choose rng (alternates visited start_node) with
      | None -> None
      | Some first_target ->
        let changed = ref [] in
        let rec chain cur target visited remaining =
          match neighbourhood_min g schedule ~delta cur with
          | None -> ()
          | Some base ->
            Schedule.assign schedule target (base - gap);
            changed := target :: !changed;
            let visited = Int_set.add target visited in
            if remaining > 1 then begin
              let pool =
                Slpdas_wsn.Graph.neighbour_list g target
                |> List.filter (fun v ->
                       (not (Int_set.mem v visited))
                       && Some v <> parent.(target)
                       && v <> sink)
              in
              match choose rng pool with
              | None -> ()
              | Some next -> chain target next visited (remaining - 1)
            end
        in
        chain start_node first_target visited change_length;
        let change_path = List.rev !changed in
        let pinned =
          let set = Int_set.of_list change_path in
          fun v -> Int_set.mem v set
        in
        let salt =
          match rng with
          | None -> 0
          | Some r -> 1 + Slpdas_util.Rng.int r 0x3FFF_FFFF
        in
        Das_build.repair ~salt g ~schedule ~parent ~pinned;
        Some { refined = schedule; search_path; start_node; change_path }
      end
    end
