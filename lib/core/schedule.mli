(** TDMA data-aggregation slot assignments.

    A schedule maps every node to at most one transmission slot.  Within one
    TDMA period, slots fire in increasing order, so the DAS property
    [slot(child) < slot(parent)] makes data converge towards the sink in a
    single period.  The sink itself never transmits application data
    (Defs. 2–3 assign slots to [V \ {sink}]); during construction it
    advertises the {e virtual} slot [∆] from which its children derive
    theirs.

    Slots are plain integers; construction starts at [∆] (Table I: 100) and
    decreases away from the sink.  The equivalent sender-set view
    [⟨σ1, …, σl⟩] of the paper is available through {!sender_sets}. *)

type t

val create : n:int -> sink:int -> t
(** [create ~n ~sink] is the empty schedule over [n] nodes: no node has a
    slot.  @raise Invalid_argument if [sink] is out of range. *)

val n : t -> int

val sink : t -> int

val assign : t -> int -> int -> unit
(** [assign t v s] gives node [v] slot [s], replacing any previous slot.
    @raise Invalid_argument if [v] is the sink or out of range. *)

val clear_slot : t -> int -> unit

val slot : t -> int -> int option
(** [slot t v] is [v]'s slot, or [None] if unassigned (always [None] for the
    sink). *)

val slot_exn : t -> int -> int
(** @raise Invalid_argument if unassigned. *)

val assigned : t -> int -> bool

val complete : t -> bool
(** [complete t] iff every non-sink node has a slot (condition 2 of Defs.
    2–3). *)

val min_slot : t -> int option
(** Smallest assigned slot, if any node is assigned. *)

val max_slot : t -> int option

val sender_sets : t -> (int * int list) list
(** [sender_sets t] is the paper's [⟨σ1, …, σl⟩] view: the list of
    [(slot, senders)] pairs in increasing slot order, senders sorted.  Only
    non-empty sets appear. *)

val copy : t -> t

val equal : t -> t -> bool

val digest : t -> string
(** A content digest of the schedule — node count, sink, and every slot
    assignment — stable across machines and OCaml versions (built on
    {!Slpdas_util.Fnv}, never [Hashtbl.hash]), so it can key persistent
    verification caches.  [digest a = digest b] coincides with {!equal} up
    to hash collisions (negligible at 128 bits).  Memoized: computing it on
    an unchanged schedule is a field read; {!assign} and {!clear_slot}
    invalidate the memo.  The string starts with an ["s1-"] version tag so
    future encoding changes cannot alias old keys. *)

val of_alist : n:int -> sink:int -> (int * int) list -> t
(** [of_alist ~n ~sink assocs] builds a schedule from [(node, slot)] pairs.
    @raise Invalid_argument on duplicates, the sink, or out-of-range nodes. *)

val to_alist : t -> (int * int) list
(** Assigned [(node, slot)] pairs in node order. *)

val to_string : t -> string
(** Serialise to a stable line-oriented text format (versioned header, then
    one [node slot] pair per line).  Round-trips through {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse the {!to_string} format; [Error] carries a human-readable reason
    (bad header, malformed line, out-of-range or duplicate node, …). *)

val pp : Format.formatter -> t -> unit

val pp_grid : dim:int -> Format.formatter -> t -> unit
(** Render the slot field of a [dim × dim] grid topology as a matrix — the
    most useful debugging view for the paper's layouts. *)
