(** The protocol message vocabulary shared by all three phases.

    One variant per message kind of the paper: [Hello] for neighbour
    discovery (implicit in §VI-B's neighbour-discovery periods), [Dissem] for
    the Phase-1 state dissemination of Fig. 2 (its [normal] flag selects the
    assignment vs update interpretation), [Search] and [Change] for Phases 2
    and 3 (Figs. 3–4), and [Data] for normal-operation traffic (§VI-A: every
    node broadcasts a message in its time slot; the routing layer is
    flooding). *)

type ninfo = { hop : int; slot : int }
(** The per-node (hop, slot) record disseminated as [Ninfo] in Fig. 2. *)

type t =
  | Hello
  | Dissem of {
      normal : bool;  (** [false] marks an update-phase dissemination *)
      info : (int * ninfo option) list;
          (** the sender's [Ninfo] restricted to its neighbourhood and
              itself; [None] entries are known-but-unassigned neighbours,
              the competitor set [Others] is derived from them *)
      parent : int option;  (** the sender's chosen parent, [par] *)
    }
  | Search of { target : int; ttl : int }
      (** Phase-2 search token: only [target] acts on it; [ttl] is the
          remaining search distance [SD] *)
  | Change of { target : int; base_slot : int; ttl : int }
      (** Phase-3 refinement token: [target] takes slot [base_slot - 1];
          [ttl] is the remaining change length *)
  | Data of { origin : int; seq : int; readings : (int * int) list }
      (** normal-phase payload transmitted in the sender's TDMA slot.
          [readings] is the aggregate being convergecast: one
          [(source, generation period)] pair per sensor reading collected
          from the sender's subtree since its previous transmission *)
  | Neighbour_down of int
      (** failure-detector report: the carried node has crash-stopped.  Not
          a radio message — the fault injector ([Slpdas_fault.Injector])
          injects it directly into each surviving neighbour after a
          detection delay, modelling the link-layer beacon/ack timeout that
          TOSSIM deployments use to notice dead neighbours.  The receiver
          purges the node from its neighbourhood state and, if orphaned,
          re-enters Phase-1 provisioning (the update mode of Fig. 2) *)
  | Release of { target : int }
      (** repair-cascade detach: an orphan whose every surviving neighbour
          is one of its own convergecast children cannot re-parent without
          creating a cycle, so it hands the problem down — [target] (its
          best-placed child) is told to detach and re-anchor elsewhere,
          recursing if the child is in the same position.  Once the child
          re-anchors and disseminates, the original orphan adopts it as the
          new parent *)

val pp : Format.formatter -> t -> unit

val describe : t -> string
(** Short tag ("hello", "dissem", …) for counters and traces. *)

val message_id : t -> int option
(** The message instance a transmission belongs to, if it is data-bearing —
    the observation an eavesdropper keys its history on ([Data] only;
    control traffic is not attributable to a source).  Injective over
    (origin, seq). *)
