type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?align ~header rows =
  let arity = List.length header in
  List.iter
    (fun row ->
      if List.length row <> arity then
        invalid_arg "Tabular.render: ragged row")
    rows;
  let align =
    match align with
    | Some a when List.length a = arity -> a
    | Some _ -> invalid_arg "Tabular.render: align arity mismatch"
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let fmt_row cells =
    let padded =
      List.map2
        (fun (w, a) cell -> pad a w cell)
        (List.combine widths align)
        cells
    in
    String.concat "  " padded
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (fmt_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (fmt_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let csv_cell cell =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if not needs_quoting then cell
  else begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv ~header rows =
  let arity = List.length header in
  List.iter
    (fun row ->
      if List.length row <> arity then invalid_arg "Tabular.to_csv: ragged row")
    rows;
  let line cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let bar_width = 40

let bar value max_value =
  if max_value <= 0.0 then ""
  else begin
    let n =
      int_of_float (Float.round (value /. max_value *. float_of_int bar_width))
    in
    String.make (max 0 n) '#'
  end

let bar_chart ~title ~unit_label series =
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let max_value = List.fold_left (fun acc (_, v) -> max acc v) 0.0 series in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 series
  in
  List.iter
    (fun (label, value) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s | %-*s %.2f %s\n"
           (pad Left label_width label)
           bar_width (bar value max_value) value unit_label))
    series;
  Buffer.contents buf

let grouped_bar_chart ~title ~unit_label ~group_names rows =
  let arity = List.length group_names in
  List.iter
    (fun (_, vs) ->
      if List.length vs <> arity then
        invalid_arg "Tabular.grouped_bar_chart: ragged row")
    rows;
  let series =
    List.concat_map
      (fun (row_label, vs) ->
        List.map2 (fun g v -> (row_label ^ " / " ^ g, v)) group_names vs)
      rows
  in
  bar_chart ~title ~unit_label series
