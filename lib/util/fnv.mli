(** Machine-stable streaming digests.

    Cache keys and structural fingerprints (graph fingerprints, schedule
    digests, on-disk memo stores) must be identical on every machine and
    OCaml version that computes them: a warm cache written by one build has
    to be readable by the next.  [Hashtbl.hash] guarantees none of that —
    its value is explicitly allowed to change between compiler versions and
    differs between 32- and 64-bit words — so digest-producing code bans it
    (the [unstable-digest] lint rule) and feeds this hasher instead.

    The digest is a pair of independent 64-bit streams — an FNV-1a
    accumulator and a rotate-xor-multiply mixer — computed over the exact
    byte sequence the caller feeds, with all arithmetic on [Int64] so the
    result is independent of the platform word size.  128 bits keeps the
    collision probability negligible for cache-sized key populations; this
    is {e not} a cryptographic hash and offers no adversarial collision
    resistance. *)

type t
(** A mutable digest accumulator. *)

val create : unit -> t

val add_int : t -> int -> unit
(** Feed one OCaml [int], encoded as 8 little-endian bytes of its [Int64]
    image (so the same value digests identically on any platform). *)

val add_string : t -> string -> unit
(** Feed a string: its length (as {!add_int}) followed by its bytes, so
    ["ab","c"] and ["a","bc"] digest differently. *)

val hex : t -> string
(** The current 128-bit digest as 32 lowercase hex characters.  Reading the
    digest does not reset the accumulator. *)
