(** Fixed-size worker pool over OCaml 5 domains.

    The experiment harness is embarrassingly parallel: every seeded run and
    every per-source verification is independent and fully determined by its
    inputs.  This pool fans such work out across domains while keeping the
    results in submission order, so a parallel map returns exactly what the
    sequential map would — parallelism never changes results, only
    wall-clock.

    A pool of size 1 spawns no domains at all: [map] degenerates to a plain
    sequential [List.map] in the calling domain, guaranteeing bit-for-bit
    identical behaviour to code that never heard of the pool.

    Tasks must be thread-safe with respect to each other (no shared mutable
    state); everything in this repository qualifies because runs are
    parameterised by value (topology, params, seed).  Pools are not
    reentrant: a task must not submit work to the pool executing it. *)

type t

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]: the parallelism the hardware
    supports, used as the default pool size. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (the caller's
    domain is the remaining worker).  Default {!recommended}.
    @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** Total parallelism, including the calling domain. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  Must not be called while a map is
    in flight. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val map : t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs], computed by all of the pool's
    domains.  Order-preserving and deterministic for pure [f]: the result
    does not depend on the pool size.  Work is handed out in chunks of
    [chunk] items (default: balanced against the pool size) to bound
    synchronisation overhead.  If any application of [f] raises, the first
    exception (in completion order) is re-raised in the caller after the
    remaining chunks are drained.
    @raise Invalid_argument if [chunk < 1] or if called from inside a task
    of the same pool. *)

val map_array : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map}. *)
