(** Fixed-size worker pool over OCaml 5 domains.

    The experiment harness is embarrassingly parallel: every seeded run and
    every per-source verification is independent and fully determined by its
    inputs.  This pool fans such work out across domains while keeping the
    results in submission order, so a parallel map returns exactly what the
    sequential map would — parallelism never changes results, only
    wall-clock.

    A pool of size 1 spawns no domains at all: [map] degenerates to a plain
    sequential [List.map] in the calling domain, guaranteeing bit-for-bit
    identical behaviour to code that never heard of the pool.

    Tasks must be thread-safe with respect to each other (no shared mutable
    state); everything in this repository qualifies because runs are
    parameterised by value (topology, params, seed).  Pools are not
    reentrant: a task must not submit work to the pool executing it. *)

type t

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]: the parallelism the hardware
    supports, used as the default pool size. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (the caller's
    domain is the remaining worker).  Default {!recommended}.
    @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** Total parallelism, including the calling domain. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  Must not be called while a map is
    in flight. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val map : t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs], computed by all of the pool's
    domains.  Order-preserving and deterministic for pure [f]: the result
    does not depend on the pool size.  Work is handed out in chunks of
    [chunk] items (default: balanced against the pool size) to bound
    synchronisation overhead.  If any application of [f] raises, the first
    exception (in completion order) is re-raised in the caller after the
    remaining chunks are drained.
    @raise Invalid_argument if [chunk < 1] or if called from inside a task
    of the same pool. *)

val map_array : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map}. *)

(** {2 Reusable rounds}

    Barrier-per-window drivers (coupled sharding) submit the {e same} task
    set hundreds of times with only shared state (an [Atomic] window bound)
    changing between submissions.  A {!rounds} handle precomputes the
    chunking and job closure once; each {!run_round} is then a single
    publish-and-drain handshake with no per-call allocation. *)

type 'a rounds
(** A prepared, re-submittable fan-out of one task function over one item
    array. *)

val rounds : t -> ?chunk:int -> ('a -> unit) -> 'a array -> 'a rounds
(** [rounds pool f xs] prepares the round [Array.iter f xs].  [f] must be
    safe to run concurrently on distinct items; shared state it reads that
    changes between rounds must be synchronized (e.g. [Atomic]).  Chunking
    as in {!map}. *)

val run_round : 'a rounds -> unit
(** Execute one round: every item of the handle's array is passed to its
    task function exactly once, and all items complete before the call
    returns (a full barrier).  On a size-1 pool this is a plain sequential
    loop.  If any task raised, the first exception (in completion order) is
    re-raised after the barrier; the handle remains usable.
    @raise Invalid_argument if the pool is already running a map or round. *)

val run_round_prefix : 'a rounds -> int -> unit
(** [run_round_prefix r n] runs the round over only the first [n] items of
    the handle's array.  Drivers whose live task set varies per round (a
    windowed simulation where most cells are idle most windows) overwrite
    the array prefix, then submit just that prefix — same barrier semantics
    as {!run_round}, proportionally fewer chunk claims.
    @raise Invalid_argument if [n] is negative or exceeds the array length,
    or if the pool is already running a map or round. *)
