type t = {
  size : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  work_done : Condition.t;
  (* Current job, as a chunk-index consumer.  The closure owns the input and
     output arrays of the map that published it; the pool only hands out
     chunk indices. *)
  mutable job : (int -> unit) option;
  mutable chunks : int;  (* chunk count of the current job *)
  mutable next : int;  (* next chunk index to hand out *)
  mutable completed : int;  (* chunks fully executed *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let recommended () = Domain.recommended_domain_count ()

(* Execute chunks of [job] until none remain unclaimed.  Called and returns
   with [t.mutex] held; the lock is released around each chunk. *)
let drain t job =
  while t.next < t.chunks do
    let i = t.next in
    t.next <- t.next + 1;
    Mutex.unlock t.mutex;
    job i;
    Mutex.lock t.mutex;
    t.completed <- t.completed + 1;
    if t.completed = t.chunks then begin
      t.job <- None;
      Condition.broadcast t.work_done
    end
  done

let worker t =
  Mutex.lock t.mutex;
  let running = ref true in
  while !running do
    match t.job with
    | Some job when t.next < t.chunks -> drain t job
    | _ ->
      if t.stopping then running := false
      else Condition.wait t.work_available t.mutex
  done;
  Mutex.unlock t.mutex

let create ?domains () =
  let size =
    match domains with
    | None -> max 1 (recommended ())
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Pool.create: domains must be >= 1"
  in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      work_done = Condition.create ();
      job = None;
      chunks = 0;
      next = 0;
      completed = 0;
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_chunk t len =
  (* Aim for several chunks per domain so uneven tasks balance, without
     degenerating to per-item locking on long inputs. *)
  max 1 (len / (t.size * 8))

let validate_chunk = function
  | Some c when c >= 1 -> Some c
  | Some _ -> invalid_arg "Pool.map: chunk must be >= 1"
  | None -> None

(* Publish [job] over [chunks] chunk indices and block until every chunk has
   executed.  The calling domain is a worker too; on a size-1 pool this
   degenerates to running all chunks inline (there are no other workers). *)
let submit t ~chunks job =
  Mutex.lock t.mutex;
  if Option.is_some t.job || t.next < t.chunks then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.map: pool is already running a map (not reentrant)"
  end;
  t.chunks <- chunks;
  t.next <- 0;
  t.completed <- 0;
  t.job <- Some job;
  Condition.broadcast t.work_available;
  drain t job;
  while t.completed < t.chunks do
    Condition.wait t.work_done t.mutex
  done;
  Mutex.unlock t.mutex

let map_array t ?chunk f xs =
  let len = Array.length xs in
  let chunk =
    match validate_chunk chunk with Some c -> c | None -> default_chunk t len
  in
  if len = 0 then [||]
  else if t.size = 1 then Array.map f xs
  else begin
    let results = Array.make len None in
    let first_error = ref None in
    let job i =
      let lo = i * chunk and hi = min len ((i + 1) * chunk) in
      try
        (* Racy read, deliberately: once a task has failed there is no point
           computing the remaining chunks, but seeing a stale [None] only
           costs wasted work, never correctness. *)
        if Option.is_none !first_error then
          for k = lo to hi - 1 do
            results.(k) <- Some (f xs.(k))
          done
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        Mutex.lock t.mutex;
        if Option.is_none !first_error then first_error := Some (e, bt);
        Mutex.unlock t.mutex
    in
    submit t ~chunks:((len + chunk - 1) / chunk) job;
    match !first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map (function Some v -> v | None -> assert false) results
  end

(* Reusable round handle: the chunking arithmetic, the job closure and the
   error slot are built once, so a barrier-every-window driver (coupled
   sharding runs thousands of sub-millisecond windows) pays one mutex
   handshake per round instead of re-deriving and re-allocating the whole
   submission per call. *)
type 'a rounds = {
  r_pool : t;
  r_len : int;
  r_chunk : int;
  r_items : 'a array;
  r_f : 'a -> unit;
  r_job : int -> unit;
  (* Item count of the round currently being submitted; the job closure
     reads it so a prefix round stops at the live boundary.  Only the
     submitting domain writes it, and always before the submit handshake
     publishes the job, so workers observe the value for their round. *)
  r_live : int ref;
  r_error : (exn * Printexc.raw_backtrace) option ref;
}

let rounds t ?chunk f xs =
  let len = Array.length xs in
  let chunk =
    match validate_chunk chunk with Some c -> c | None -> default_chunk t len
  in
  let error = ref None in
  let live = ref len in
  let job i =
    let lo = i * chunk and hi = min !live ((i + 1) * chunk) in
    try
      if Option.is_none !error then
        for k = lo to hi - 1 do
          f xs.(k)
        done
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      Mutex.lock t.mutex;
      if Option.is_none !error then error := Some (e, bt);
      Mutex.unlock t.mutex
  in
  {
    r_pool = t;
    r_len = len;
    r_chunk = chunk;
    r_items = xs;
    r_f = f;
    r_job = job;
    r_live = live;
    r_error = error;
  }

let run_round_prefix r n =
  if n < 0 || n > r.r_len then invalid_arg "Pool.run_round_prefix";
  if n = 0 then ()
  else if r.r_pool.size = 1 then
    for k = 0 to n - 1 do
      r.r_f r.r_items.(k)
    done
  else begin
    r.r_live := n;
    submit r.r_pool ~chunks:((n + r.r_chunk - 1) / r.r_chunk) r.r_job;
    match !(r.r_error) with
    | Some (e, bt) ->
      r.r_error := None;
      Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let run_round r = run_round_prefix r r.r_len

let map t ?chunk f xs =
  Array.to_list (map_array t ?chunk f (Array.of_list xs))
