type t = { capacity : int; words : Bytes.t }

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; words = Bytes.make ((capacity + 7) / 8) '\000' }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: element out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let byte = i lsr 3 in
  Bytes.set t.words byte
    (Char.chr (Char.code (Bytes.get t.words byte) lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let byte = i lsr 3 in
  Bytes.set t.words byte
    (Char.chr (Char.code (Bytes.get t.words byte) land lnot (1 lsl (i land 7)) land 0xff))

let cardinal t =
  let count = ref 0 in
  for i = 0 to Bytes.length t.words - 1 do
    let b = Char.code (Bytes.get t.words i) in
    let rec popcount b acc = if b = 0 then acc else popcount (b lsr 1) (acc + (b land 1)) in
    count := !count + popcount b 0
  done;
  !count

let is_empty t =
  let rec scan i =
    if i >= Bytes.length t.words then true
    else if Bytes.get t.words i <> '\000' then false
    else scan (i + 1)
  in
  scan 0

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let iter f t =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done

let elements t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let copy t = { capacity = t.capacity; words = Bytes.copy t.words }
