(** Fixed-capacity sets of small integers.

    Node identifiers in a topology are dense integers, so visited-sets in the
    verifier and BFS frontiers use this representation instead of hash tables:
    O(1) membership with no allocation on the hot path. *)

type t

val create : int -> t
(** [create capacity] is an empty set accepting members in
    [\[0, capacity)].  @raise Invalid_argument on negative capacity. *)

val capacity : t -> int

val mem : t -> int -> bool
(** @raise Invalid_argument if the element is out of range. *)

val add : t -> int -> unit
val remove : t -> int -> unit

val cardinal : t -> int
(** Number of members; O(capacity/64). *)

val is_empty : t -> bool

val clear : t -> unit

val iter : (int -> unit) -> t -> unit
(** [iter f t] applies [f] to members in increasing order. *)

val elements : t -> int list
(** Members in increasing order. *)

val copy : t -> t
