(** Polymorphic binary min-heap.

    Used by the discrete-event simulator as its pending-event queue.  The
    ordering function is supplied at creation time; ties are resolved by the
    ordering function itself (the simulator orders on [(time, sequence)] so
    ties never occur). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x].  Amortised O(log n). *)

val peek : 'a t -> 'a option
(** [peek h] is the minimum element without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** [pop_exn h] is [pop h].
    @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
(** Remove all elements. *)

val to_sorted_list : 'a t -> 'a list
(** [to_sorted_list h] drains a copy of [h] in ascending order; [h] itself is
    unchanged.  O(n log n); intended for tests and debugging. *)
