(* Two independent 64-bit streams over the same byte sequence:

   - stream [a] is textbook FNV-1a (xor the byte in, multiply by the FNV
     prime);
   - stream [b] xors the byte in, rotates by 27 and multiplies by the
     splitmix64 golden-ratio gamma, so its diffusion pattern shares nothing
     with FNV's.

   All arithmetic is on Int64 (wrapping), making the digest identical on
   every platform regardless of the native word size. *)

type t = { mutable a : int64; mutable b : int64 }

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L
let mix_offset = 0x9ae16a3b2f90404fL
let gamma = 0x9e3779b97f4a7c15L

let create () = { a = fnv_offset; b = mix_offset }

let[@inline] rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let[@inline] add_byte t byte =
  let c = Int64.of_int (byte land 0xff) in
  t.a <- Int64.mul (Int64.logxor t.a c) fnv_prime;
  t.b <- Int64.mul (rotl (Int64.logxor t.b c) 27) gamma

let add_int t v =
  let x = Int64.of_int v in
  for i = 0 to 7 do
    add_byte t (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done

let add_string t s =
  add_int t (String.length s);
  String.iter (fun c -> add_byte t (Char.code c)) s

let hex t = Printf.sprintf "%016Lx%016Lx" t.a t.b
