let int_pair (a1, b1) (a2, b2) =
  match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

let pair cmp_a cmp_b (a1, b1) (a2, b2) =
  match cmp_a a1 a2 with 0 -> cmp_b b1 b2 | c -> c

let by key cmp a b = cmp (key a) (key b)
