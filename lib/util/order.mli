(** Monomorphic comparators.

    The slp-lint [poly-compare] rule bans the polymorphic [Stdlib.compare]
    in [lib/]: it walks arbitrary heap structure at every call, defeats
    unboxing, and silently accepts values (functions, cyclic structure)
    that should be type errors.  These combinators cover the sort keys the
    codebase actually uses — mostly [(hop, id)]-style integer pairs. *)

val int_pair : int * int -> int * int -> int
(** Lexicographic [Int.compare] on pairs. *)

val pair : ('a -> 'a -> int) -> ('b -> 'b -> int) -> 'a * 'b -> 'a * 'b -> int
(** [pair ca cb] orders pairs lexicographically by [ca] then [cb]. *)

val by : ('a -> 'b) -> ('b -> 'b -> int) -> 'a -> 'a -> int
(** [by key cmp] orders values by [cmp] on [key]. *)
