(** Descriptive statistics for experiment results.

    Capture ratio is a proportion over seeded runs, so the module also
    provides Wilson score intervals, the standard small-sample confidence
    interval for binomial proportions. *)

type summary = {
  n : int;
  mean : float;
  std : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
}

val summarize : float list -> summary
(** [summarize xs] computes all summary fields in one pass.
    @raise Invalid_argument on the empty list. *)

val mean : float list -> float
(** @raise Invalid_argument on the empty list. *)

val std : float list -> float
(** Sample standard deviation; [0.] for singleton lists.
    @raise Invalid_argument on the empty list. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,1\]] using linear interpolation between
    order statistics.  @raise Invalid_argument on empty input or [p] outside
    [\[0,1\]]. *)

val wilson_interval : successes:int -> trials:int -> z:float -> float * float
(** [wilson_interval ~successes ~trials ~z] is the Wilson score interval for a
    binomial proportion at critical value [z] (1.96 for 95%).
    @raise Invalid_argument if [trials <= 0] or [successes] outside
    [\[0, trials\]]. *)

val proportion : successes:int -> trials:int -> float
(** [proportion ~successes ~trials] is the point estimate [successes/trials].
    @raise Invalid_argument if [trials <= 0]. *)

val normal_cdf : float -> float
(** Standard normal cumulative distribution function (Abramowitz & Stegun
    7.1.26 erf approximation, |error| < 1.5e-7). *)

val two_proportion_p_value :
  successes1:int -> trials1:int -> successes2:int -> trials2:int -> float
(** Two-sided pooled two-proportion z-test: the p-value for "the two capture
    ratios are equal".  Used when reporting that SLP DAS beats the
    protectionless baseline by more than seed noise.
    @raise Invalid_argument on non-positive trials or out-of-range
    successes.  Returns 1.0 when both proportions are degenerate (pooled
    variance zero). *)
