(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    simulation run, schedule construction and experiment is reproducible from
    a single root seed.  The generator is SplitMix64 (Steele, Lea & Flood,
    OOPSLA 2014): a small, fast, splittable generator with 64-bit state whose
    statistical quality is more than sufficient for Monte-Carlo simulation.

    This module is the {e sole} sanctioned entry point for randomness: calling
    [Stdlib.Random] anywhere outside this file (or [bench/]) is rejected by
    the [random-stdlib] rule of [slp-lint] (run [make lint]), because hidden
    global-state draws would silently break run-to-run reproducibility and
    the engine-equivalence and determinism test suites that depend on it. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a fresh generator from an integer seed.  Two
    generators created from equal seeds produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator that continues [t]'s stream; the
    original is unaffected by draws made on the copy. *)

val split : t -> t
(** [split t] derives a statistically independent child generator and
    advances [t].  Use one child per simulation run so that adding draws to
    one run never perturbs another. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val gaussian : t -> mean:float -> std:float -> float
(** [gaussian t ~mean ~std] draws from a normal distribution using the
    Box–Muller transform. *)

val choose : t -> 'a list -> 'a
(** [choose t xs] picks a uniform element of [xs].
    @raise Invalid_argument if [xs] is empty. *)

val choose_array : t -> 'a array -> 'a
(** [choose_array t xs] picks a uniform element of [xs].
    @raise Invalid_argument if [xs] is empty. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t xs] permutes [xs] in place (Fisher–Yates). *)

val shuffle_list : t -> 'a list -> 'a list
(** [shuffle_list t xs] is a uniformly shuffled copy of [xs]. *)
