type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
}

let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | xs -> xs

let mean xs =
  let xs = require_nonempty "Stats.mean" xs in
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let std xs =
  let xs = require_nonempty "Stats.std" xs in
  match xs with
  | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. (n -. 1.0))

let summarize xs =
  let xs = require_nonempty "Stats.summarize" xs in
  let n = List.length xs in
  let mn = List.fold_left min infinity xs in
  let mx = List.fold_left max neg_infinity xs in
  { n; mean = mean xs; std = std xs; min = mn; max = mx }

let percentile xs p =
  let xs = require_nonempty "Stats.percentile" xs in
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p outside [0,1]";
  let sorted = List.sort Float.compare xs in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let proportion ~successes ~trials =
  if trials <= 0 then invalid_arg "Stats.proportion: trials must be positive";
  float_of_int successes /. float_of_int trials

(* Abramowitz & Stegun 7.1.26: erf(x) ~ 1 - poly(t) exp(-x^2) with
   t = 1/(1 + 0.3275911 x). *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = abs_float x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let poly =
    let a1 = 0.254829592
    and a2 = -0.284496736
    and a3 = 1.421413741
    and a4 = -1.453152027
    and a5 = 1.061405429 in
    ((((((((a5 *. t) +. a4) *. t) +. a3) *. t) +. a2) *. t) +. a1) *. t
  in
  sign *. (1.0 -. (poly *. exp (-.x *. x)))

let normal_cdf x = 0.5 *. (1.0 +. erf (x /. sqrt 2.0))

let two_proportion_p_value ~successes1 ~trials1 ~successes2 ~trials2 =
  if trials1 <= 0 || trials2 <= 0 then
    invalid_arg "Stats.two_proportion_p_value: trials must be positive";
  if
    successes1 < 0 || successes1 > trials1 || successes2 < 0
    || successes2 > trials2
  then invalid_arg "Stats.two_proportion_p_value: successes out of range";
  let n1 = float_of_int trials1 and n2 = float_of_int trials2 in
  let p1 = float_of_int successes1 /. n1 in
  let p2 = float_of_int successes2 /. n2 in
  let pooled = float_of_int (successes1 + successes2) /. (n1 +. n2) in
  let variance = pooled *. (1.0 -. pooled) *. ((1.0 /. n1) +. (1.0 /. n2)) in
  if variance <= 0.0 then if p1 = p2 then 1.0 else 0.0
  else begin
    let z = (p1 -. p2) /. sqrt variance in
    2.0 *. (1.0 -. normal_cdf (abs_float z))
  end

let wilson_interval ~successes ~trials ~z =
  if trials <= 0 then invalid_arg "Stats.wilson_interval: trials must be positive";
  if successes < 0 || successes > trials then
    invalid_arg "Stats.wilson_interval: successes outside [0, trials]";
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let centre = p +. (z2 /. (2.0 *. n)) in
  let spread = z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) in
  ((centre -. spread) /. denom, (centre +. spread) /. denom)
