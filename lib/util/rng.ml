(* SplitMix64.  Reference: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.(sub (add (sub r v) bound64) 1L) < 0L then draw ()
    else Int64.to_int v
  in
  draw ()

let float t bound =
  (* 53 random bits mapped to [0,1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let gaussian t ~mean ~std =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (std *. r *. cos (2.0 *. Float.pi *. u2))

let choose_array t xs =
  if Array.length xs = 0 then invalid_arg "Rng.choose_array: empty array";
  xs.(int t (Array.length xs))

let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | [ x ] -> x
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  for i = Array.length xs - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = xs.(i) in
    xs.(i) <- xs.(j);
    xs.(j) <- tmp
  done

let shuffle_list t xs =
  let arr = Array.of_list xs in
  shuffle t arr;
  Array.to_list arr
