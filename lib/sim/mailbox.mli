(** Deterministic boundary mailbox for coupled sharded runs.

    One mailbox per directed cell pair with at least one cut arc: the source
    cell's {!Engine.coupling} [send] hook pushes every boundary delivery it
    produces during a lookahead window; at the window barrier the
    coordinator drains the box — in [(time, src, sseq)] order, so the merge
    is independent of how work was scheduled — into the destination cell via
    {!Engine.ingest_delivery}.

    The buffer is a growable struct-of-arrays (flat unboxed rows, no
    per-entry allocation), written by exactly one domain per window and read
    only after the barrier. *)

type 'm t

val create : unit -> 'm t

val length : 'm t -> int
(** Entries currently buffered. *)

val push : 'm t -> at:float -> src:int -> sseq:int -> node:int -> msg:'m -> unit
(** Append a boundary delivery: arrival time [at], {e global} sender [src],
    the sender's stable-key counter [sseq], {e destination-local} node id
    [node], payload [msg]. *)

val drain :
  'm t -> (at:float -> src:int -> sseq:int -> node:int -> msg:'m -> unit) -> unit
(** [drain t f] calls [f] for every buffered entry in [(at, src, sseq)]
    lexicographic order, then empties the box.  Entries pushed in processing
    order are already sorted (verified by a linear scan); out-of-order
    pushes are sorted first. *)
