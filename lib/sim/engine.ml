let propagation_delay = 0.001

type ('s, 'm) event_kind =
  | Timer_fire of { node : int; timer : string; generation : int }
  | Deliver of { node : int; sender : int; msg : 'm }
  | Callback of (('s, 'm) t -> unit)

and ('s, 'm) event = { at : float; seq : int; kind : ('s, 'm) event_kind }

and ('s, 'm) t = {
  topology : Slpdas_wsn.Topology.t;
  link : Link_model.t;
  airtime : float option;
  recent_broadcasts : (float * int) Queue.t;
  rng : Slpdas_util.Rng.t;
  instances : ('s, 'm) Slpdas_gcn.Instance.t array;
  queue : ('s, 'm) event Slpdas_util.Heap.t;
  timer_generations : (int * string, int) Hashtbl.t;
  mutable now : float;
  mutable next_seq : int;
  subscribers : ('m Event.t -> unit) Queue.t;
  tally : Event.tally;
  broadcast_by_node : int array;
  mutable halted : bool;
  failed : bool array;
}

let compare_events a b =
  match Float.compare a.at b.at with 0 -> Int.compare a.seq b.seq | c -> c

let time t = t.now

let topology t = t.topology

let node_state t v = Slpdas_gcn.Instance.state t.instances.(v)

let node_fired t v = Slpdas_gcn.Instance.fired t.instances.(v)

(* A Queue keeps registration O(1) while preserving registration order. *)
let subscribe t f = Queue.add f t.subscribers

let notify t ev = Queue.iter (fun f -> f ev) t.subscribers

let emit t ev =
  Event.record t.tally ev;
  notify t ev

(* The engine counts every event unconditionally (integer bumps); the event
   value itself is only allocated when someone is listening. *)
let listening t = not (Queue.is_empty t.subscribers)

let counters t = Event.snapshot t.tally

let broadcasts t = Event.tally_broadcasts t.tally

let broadcasts_by_node t = Array.copy t.broadcast_by_node

let deliveries t = Event.tally_deliveries t.tally

let stop t = t.halted <- true

let stopped t = t.halted

let fail_node t v =
  if v < 0 || v >= Array.length t.failed then
    invalid_arg "Engine.fail_node: node out of range";
  t.failed.(v) <- true

let node_failed t v =
  if v < 0 || v >= Array.length t.failed then
    invalid_arg "Engine.node_failed: node out of range";
  t.failed.(v)

let push t ~at kind =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Slpdas_util.Heap.push t.queue { at; seq; kind }

let schedule t ~at f =
  if at < t.now then invalid_arg "Engine.schedule: time is in the past";
  push t ~at (Callback f)

let timer_generation t node timer =
  Option.value ~default:0 (Hashtbl.find_opt t.timer_generations (node, timer))

let bump_timer_generation t node timer =
  let g = timer_generation t node timer + 1 in
  Hashtbl.replace t.timer_generations (node, timer) g;
  g

let distance t u v =
  let x1, y1 = t.topology.Slpdas_wsn.Topology.positions.(u)
  and x2, y2 = t.topology.Slpdas_wsn.Topology.positions.(v) in
  sqrt (((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0))

(* With interference modelling on, remember recent transmissions and prune
   entries that can no longer overlap anything. *)
let record_broadcast t node =
  match t.airtime with
  | None -> ()
  | Some airtime ->
    Queue.add (t.now, node) t.recent_broadcasts;
    let horizon = t.now -. airtime -. (4.0 *. propagation_delay) in
    let rec prune () =
      match Queue.peek_opt t.recent_broadcasts with
      | Some (time, _) when time < horizon ->
        ignore (Queue.pop t.recent_broadcasts);
        prune ()
      | Some _ | None -> ()
    in
    prune ()

(* A reception at [node] of a transmission sent at [tx_time] is jammed when
   any other audible transmission overlaps it (half-duplex: the receiver's
   own transmissions jam too). *)
let jammed t ~node ~sender ~tx_time =
  match t.airtime with
  | None -> false
  | Some airtime ->
    let graph = t.topology.Slpdas_wsn.Topology.graph in
    Queue.fold
      (fun acc (time, other) ->
        acc
        || (other <> sender
           && abs_float (time -. tx_time) < airtime
           && (other = node || Slpdas_wsn.Graph.mem_edge graph node other)))
      false t.recent_broadcasts

let rec apply_effects t node effects =
  List.iter
    (fun effect_ ->
      match (effect_ : 'm Slpdas_gcn.effect_) with
      | Slpdas_gcn.Broadcast msg ->
        Event.count_broadcast t.tally ~time:t.now;
        t.broadcast_by_node.(node) <- t.broadcast_by_node.(node) + 1;
        record_broadcast t node;
        if listening t then
          notify t (Event.Broadcast { time = t.now; sender = node; msg });
        Array.iter
          (fun v ->
            if Link_model.delivered t.link t.rng ~distance_m:(distance t node v)
            then push t ~at:(t.now +. propagation_delay) (Deliver { node = v; sender = node; msg })
            else begin
              Event.count_drop t.tally ~collision:false ~time:t.now;
              if listening t then
                notify t
                  (Event.Drop
                     { time = t.now; node = v; sender = node; collision = false })
            end)
          (Slpdas_wsn.Graph.neighbours t.topology.Slpdas_wsn.Topology.graph node)
      | Slpdas_gcn.Set_timer { name; after } ->
        let generation = bump_timer_generation t node name in
        push t ~at:(t.now +. after) (Timer_fire { node; timer = name; generation })
      | Slpdas_gcn.Stop_timer name -> ignore (bump_timer_generation t node name))
    effects

and inject t ~node trigger =
  (* Crash-stop failures: a failed node neither processes triggers nor emits
     effects. *)
  if not t.failed.(node) then begin
    let effects = Slpdas_gcn.Instance.deliver t.instances.(node) trigger in
    apply_effects t node effects
  end

let create ?airtime ~topology ~link ~rng ~program () =
  let n = Slpdas_wsn.Graph.n topology.Slpdas_wsn.Topology.graph in
  let queue = Slpdas_util.Heap.create ~cmp:compare_events in
  let boot =
    Array.init n (fun v -> Slpdas_gcn.Instance.create (program ~self:v) ~self:v)
  in
  let t =
    {
      topology;
      link;
      airtime;
      recent_broadcasts = Queue.create ();
      rng;
      instances = Array.map fst boot;
      queue;
      timer_generations = Hashtbl.create (4 * n);
      now = 0.0;
      next_seq = 0;
      subscribers = Queue.create ();
      tally = Event.tally_create ();
      broadcast_by_node = Array.make n 0;
      halted = false;
      failed = Array.make n false;
    }
  in
  Array.iteri (fun v (_, effects) -> apply_effects t v effects) boot;
  t

let process t event =
  t.now <- event.at;
  match event.kind with
  | Timer_fire { node; timer; generation } ->
    (* Stale fires (superseded by a later Set/Stop_timer) are dropped
       silently: they never reach the node, so they are not events. *)
    if generation = timer_generation t node timer then begin
      Event.count_timer_fire t.tally ~time:t.now;
      if listening t then
        notify t (Event.Timer_fire { time = t.now; node; timer });
      inject t ~node (Slpdas_gcn.Timeout timer)
    end
  | Deliver { node; sender; msg } ->
    if jammed t ~node ~sender ~tx_time:(t.now -. propagation_delay) then begin
      Event.count_drop t.tally ~collision:true ~time:t.now;
      if listening t then
        notify t (Event.Drop { time = t.now; node; sender; collision = true })
    end
    else begin
      Event.count_delivery t.tally ~time:t.now;
      if listening t then
        notify t (Event.Delivery { time = t.now; node; sender; msg });
      inject t ~node (Slpdas_gcn.Receive { sender; msg })
    end
  | Callback f -> f t

let step t =
  match Slpdas_util.Heap.pop t.queue with
  | None -> false
  | Some event ->
    process t event;
    true

let run_until t deadline =
  let rec loop () =
    if t.halted then ()
    else begin
      match Slpdas_util.Heap.peek t.queue with
      | Some event when event.at <= deadline ->
        ignore (Slpdas_util.Heap.pop t.queue);
        process t event;
        loop ()
      | Some _ | None -> t.now <- max t.now deadline
    end
  in
  loop ()
