let propagation_delay = 0.001

type impl = Fast | Reference

(* Per-topology link-decision cache (Fast impl).  Built once at [create];
   collapses a delivery decision to at most one RNG draw and a float
   compare.  [rx_power] is one flat float array in CSR layout ([off] mirrors
   the adjacency offsets), computed with exactly the float expression
   [Link_model.delivered] uses, so verdicts are bit-identical to the
   reference path — and a million-node topology costs one allocation, not
   one per node. *)
type link_cache =
  | Always_delivered
  | Never_delivered
  | Bernoulli_loss of float  (* loss probability p, 0 < p < 1: one draw *)
  | Gaussian_rx of {
      noise_mean : float;
      noise_std : float;
      snr_threshold : float;
      off : int array;  (* off.(u): base of u's row in [rx_power] *)
      rx_power : float array;
          (* rx_power.(off.(u) + i): u → its i-th neighbour *)
    }

(* Coupled sharding (conservative lookahead windows, see Shard).  A coupled
   engine hosts one cell of a larger deployment: its nodes keep their global
   identities ([global_ids]), every RNG draw a node makes comes from that
   node's own lane (so draw sequences are per-node, not per-schedule), and
   the cut edges the shard planner kept are materialised as *boundary
   ports* — per-node CSR rows recording, for each cut neighbour, its
   position inside the node's full global adjacency row ([ports_pos]), its
   global id and its coordinates.  A broadcast walks local neighbours and
   ports merged back into global-row order, so the draw sequence on the
   sender's lane is exactly the unsharded engine's; deliveries crossing the
   boundary leave through [send] and re-enter the destination cell via
   {!ingest_delivery} at a window barrier. *)
type 'm coupling = {
  global_ids : int array;  (* local id -> global id, strictly ascending *)
  lanes : Slpdas_util.Rng.t array;  (* per-local-node RNG lanes *)
  ports_off : int array;  (* CSR offsets, length n_local + 1 *)
  ports_pos : int array;  (* position within the node's global adjacency row *)
  ports_target : int array;  (* global id of the cut neighbour *)
  ports_x : float array;  (* cut-neighbour coordinates (for link physics) *)
  ports_y : float array;
  send : at:float -> src:int -> sseq:int -> target:int -> msg:'m -> unit;
}

type ('s, 'm) event_kind =
  | Timer_fire of { node : int; timer : Slpdas_gcn.Timer.t; generation : int }
  | Deliver of { node : int; sender : int; msg : 'm }
      (* Reference impl: one event per (broadcast × delivered neighbour). *)
  | Deliver_batch of { sender : int; recipients : int array; msg : 'm }
      (* Fast impl: one event per broadcast; [propagation_delay] is a
         constant, so all of a broadcast's arrivals share one timestamp and
         expand at pop time in adjacency order — the order the reference
         impl pushes (and therefore pops) its singleton events in. *)
  | Callback of (('s, 'm) t -> unit)

and ('s, 'm) event = {
  at : float;
  seq : int;
  (* Stable content-based ordering key, used instead of [seq] as the
     same-time tiebreaker when the engine is coupled: [k1] is the global id
     of the node whose processing pushed the event (-1 for harness pushes),
     [k2] that node's own monotone push counter.  The key depends only on
     *what* pushed the event, never on the global push schedule, so a
     coupled cell and the unsharded sequential engine order the same events
     identically.  Uncoupled engines leave both at 0 and order by [seq]. *)
  k1 : int;
  k2 : int;
  kind : ('s, 'm) event_kind;
}

and ('s, 'm) t = {
  topology : Slpdas_wsn.Topology.t;
  link : Link_model.t;
  impl : impl;
  airtime : float option;
  recent_broadcasts : (float * int) Queue.t;  (* Reference: global log *)
  (* Fast + airtime: per-node audible-transmission log — v's own and its
     neighbours' recent transmissions — so a jam check scans only candidates
     that could possibly match instead of folding the global log.  Laid out
     struct-of-arrays: ring buffers with unboxed time/sender rows and flat
     head/length arrays, so recording a transmission allocates nothing
     (amortised) instead of a boxed pair plus a Queue block per audible
     position. *)
  aud_time : float array array;
  aud_sender : int array array;
  aud_head : int array;
  aud_len : int array;
  rng : Slpdas_util.Rng.t;
  program : self:int -> ('s, 'm) Slpdas_gcn.program;
      (* kept so [revive_node] can boot a fresh instance for a crashed node *)
  instances : ('s, 'm) Slpdas_gcn.Instance.t array;
  queue : ('s, 'm) event Slpdas_util.Heap.t;
  timer_generations : (int * string, int) Hashtbl.t;  (* Reference *)
  (* Fast: timer generations as one flat int array of n × [gen_stride]
     slots, gens.((node * gen_stride) + Timer.id) — a single allocation
     sized once at [create] instead of an array per node.  The stride grows
     (all rows re-laid-out) in the rare case a program mints timer names
     mid-run. *)
  mutable gens : int array;
  mutable gen_stride : int;
  link_cache : link_cache;
  neighbours : int array array;  (* cached adjacency rows *)
  batch_deliveries : bool;
      (* Fast: fold each broadcast's arrivals into one batch event.  A win
         on large networks (fewer heap operations), but on small ones the
         inflated per-event work loses to the reference's singleton events,
         so below [default_batch_cutover] nodes the fast impl pushes
         singletons too — same draws, same order, same observables. *)
  scratch : int array;  (* delivered-recipient staging, max-degree sized *)
  mutable now : float;
  mutable next_seq : int;
  subscribers : ('m Event.t -> unit) Queue.t;
  tally : Event.tally;
  broadcast_by_node : int array;
  mutable halted : bool;
  failed : bool array;
  link_overrides : (int * int, float) Hashtbl.t;
      (* fault layer: (min u v, max u v) → extra loss probability in (0, 1];
         1.0 is a hard link-down.  Applied on top of the base link model. *)
  mutable global_loss : float;
      (* fault layer: network-wide extra loss probability; 0 = inactive *)
  coupling : 'm coupling option;
  port_rx : float array;
      (* Fast + Gaussian + coupling: precomputed rx power for each boundary
         port, aligned with [ports_target]; same float expression as the
         local link cache, so cut-edge verdicts are bit-identical to the
         unsharded engine's. *)
  sseq : int array;  (* coupled: per-local-node push counters (the k2 lane) *)
  mutable harness_sseq : int;  (* coupled: push counter of the -1 lane *)
  mutable cur_src : int;
      (* local id of the node whose effects are being applied; -1 when the
         harness (schedule/callback) is pushing *)
  mutable cur_k1 : int;  (* stable key of the event being processed *)
  mutable cur_k2 : int;
}

let compare_events a b =
  match Float.compare a.at b.at with 0 -> Int.compare a.seq b.seq | c -> c

(* Coupled ordering: (at, k1, k2) is schedule-independent and unique per
   event ((k1, k2) alone never repeats), so the [seq] fallback is a pure
   safety net for totality. *)
let compare_events_stable a b =
  match Float.compare a.at b.at with
  | 0 -> (
    match Int.compare a.k1 b.k1 with
    | 0 -> (
      match Int.compare a.k2 b.k2 with 0 -> Int.compare a.seq b.seq | c -> c)
    | c -> c)
  | c -> c

(* Observable node identity: a coupled engine reports global ids on the
   event bus while indexing instances/state by local id. *)
let gid t v = match t.coupling with None -> v | Some c -> c.global_ids.(v)

let time t = t.now

let topology t = t.topology

let node_state t v = Slpdas_gcn.Instance.state t.instances.(v)

let node_fired t v = Slpdas_gcn.Instance.fired t.instances.(v)

(* A Queue keeps registration O(1) while preserving registration order. *)
let subscribe t f = Queue.add f t.subscribers

let notify t ev = Queue.iter (fun f -> f ev) t.subscribers

let emit t ev =
  Event.record t.tally ev;
  notify t ev

(* The engine counts every event unconditionally (integer bumps); the event
   value itself is only allocated when someone is listening. *)
let listening t = not (Queue.is_empty t.subscribers)

let counters t = Event.snapshot t.tally

let broadcasts t = Event.tally_broadcasts t.tally

let broadcasts_by_node t = Array.copy t.broadcast_by_node

let deliveries t = Event.tally_deliveries t.tally

let stop t = t.halted <- true

let stopped t = t.halted

let node_failed t v =
  if v < 0 || v >= Array.length t.failed then
    invalid_arg "Engine.node_failed: node out of range";
  t.failed.(v)

(* ------------------------------------------------------------------ *)
(* Fault layer: link overrides and global loss                        *)
(* ------------------------------------------------------------------ *)

let clamp_unit p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p

let link_key u v = if u <= v then (u, v) else (v, u)

let set_link_loss t ~a ~b loss =
  let n = Array.length t.failed in
  if a < 0 || a >= n || b < 0 || b >= n then
    invalid_arg "Engine.set_link_loss: node out of range";
  let loss = clamp_unit loss in
  let lo, hi = link_key a b in
  if loss > 0.0 then Hashtbl.replace t.link_overrides (lo, hi) loss
  else Hashtbl.remove t.link_overrides (lo, hi);
  (* Local ids ascend with global ids, so (gid lo, gid hi) is still the
     canonical (min, max) rendering of the edge. *)
  emit t (Event.Link_changed { time = t.now; a = gid t lo; b = gid t hi; loss })

let link_loss t ~a ~b =
  Option.value ~default:0.0 (Hashtbl.find_opt t.link_overrides (link_key a b))

let set_global_loss t loss =
  let loss = clamp_unit loss in
  t.global_loss <- loss;
  emit t (Event.Link_changed { time = t.now; a = -1; b = -1; loss })

let global_loss t = t.global_loss

let faults_active t =
  t.global_loss > 0.0 || Hashtbl.length t.link_overrides > 0

(* Fault-layer delivery filter, consulted only when the base link model
   delivered and some override is active, so fault-free runs draw exactly
   the RNG sequence they always did.  Both impls call this per neighbour in
   adjacency order at broadcast time, which keeps Fast and Reference
   draw-identical under faults.  [Rng.bernoulli] consumes no randomness for
   degenerate probabilities, so a hard link-down (loss = 1) costs no draw,
   and an edge-override drop short-circuits the global draw in both impls
   alike. *)
let fault_dropped t rng u v =
  (match Hashtbl.find_opt t.link_overrides (link_key u v) with
  | Some p -> Slpdas_util.Rng.bernoulli rng p
  | None -> false)
  || (t.global_loss > 0.0 && Slpdas_util.Rng.bernoulli rng t.global_loss)

let push t ~at kind =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let k1, k2 =
    match t.coupling with
    | None -> (0, 0)
    | Some c ->
      let src = t.cur_src in
      if src >= 0 then begin
        let s = t.sseq.(src) in
        t.sseq.(src) <- s + 1;
        (c.global_ids.(src), s)
      end
      else begin
        let s = t.harness_sseq in
        t.harness_sseq <- s + 1;
        (-1, s)
      end
  in
  Slpdas_util.Heap.push t.queue { at; seq; k1; k2; kind }

(* Push with an explicit stable key: a boundary delivery carries the key its
   sender's cell assigned, which is the key the unsharded engine would have
   assigned to the same push. *)
let push_keyed t ~at ~k1 ~k2 kind =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Slpdas_util.Heap.push t.queue { at; seq; k1; k2; kind }

let schedule t ~at f =
  if at < t.now then invalid_arg "Engine.schedule: time is in the past";
  (* Harness pushes take the -1 key lane even when a node's callback-driven
     effects are on the stack, so keys depend only on who schedules. *)
  let prev = t.cur_src in
  t.cur_src <- -1;
  push t ~at (Callback f);
  t.cur_src <- prev

(* Reference timer bookkeeping: a string-keyed hashtable probe per
   operation, kept verbatim as the differential-testing baseline. *)
let ref_timer_generation t node timer =
  Option.value ~default:0
    (Hashtbl.find_opt t.timer_generations (node, Slpdas_gcn.Timer.name timer))

let ref_bump_timer_generation t node timer =
  let g = ref_timer_generation t node timer + 1 in
  Hashtbl.replace t.timer_generations (node, Slpdas_gcn.Timer.name timer) g;
  g

(* Fast timer bookkeeping: one flat array indexed by (node, interned timer
   id).  The stride starts sized to the intern registry and grows (amortised
   doubling, all rows re-laid-out) when a program mints timer names
   mid-run. *)
let fast_timer_generation t node id =
  if id < t.gen_stride then t.gens.((node * t.gen_stride) + id) else 0

let grow_gen_stride t want =
  let n = Array.length t.failed in
  let stride' = max want ((2 * t.gen_stride) + 1) in
  let gens' = Array.make (n * stride') 0 in
  for v = 0 to n - 1 do
    Array.blit t.gens (v * t.gen_stride) gens' (v * stride') t.gen_stride
  done;
  t.gens <- gens';
  t.gen_stride <- stride'

let fast_bump_timer_generation t node id =
  if id >= t.gen_stride then grow_gen_stride t (id + 1);
  let i = (node * t.gen_stride) + id in
  let g = t.gens.(i) + 1 in
  t.gens.(i) <- g;
  g

let timer_generation t node timer =
  match t.impl with
  | Fast -> fast_timer_generation t node (Slpdas_gcn.Timer.id timer)
  | Reference -> ref_timer_generation t node timer

let bump_timer_generation t node timer =
  match t.impl with
  | Fast -> fast_bump_timer_generation t node (Slpdas_gcn.Timer.id timer)
  | Reference -> ref_bump_timer_generation t node timer

let distance t u v =
  let x1, y1 = t.topology.Slpdas_wsn.Topology.positions.(u)
  and x2, y2 = t.topology.Slpdas_wsn.Topology.positions.(v) in
  sqrt (((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0))

let prune_queue q ~horizon =
  let rec prune () =
    match Queue.peek_opt q with
    | Some (time, _) when time < horizon ->
      ignore (Queue.pop q);
      prune ()
    | Some _ | None -> ()
  in
  prune ()

(* Audible-log ring-buffer primitives (Fast + airtime). *)
let aud_push t v ~time ~sender =
  let cap = Array.length t.aud_time.(v) in
  if t.aud_len.(v) = cap then begin
    (* Grow and unroll the ring to offset 0. *)
    let cap' = 2 * cap in
    let ts = Array.make cap' 0.0 and ss = Array.make cap' 0 in
    let head = t.aud_head.(v) in
    for i = 0 to cap - 1 do
      let idx = (head + i) mod cap in
      ts.(i) <- t.aud_time.(v).(idx);
      ss.(i) <- t.aud_sender.(v).(idx)
    done;
    t.aud_time.(v) <- ts;
    t.aud_sender.(v) <- ss;
    t.aud_head.(v) <- 0
  end;
  let cap = Array.length t.aud_time.(v) in
  let idx = (t.aud_head.(v) + t.aud_len.(v)) mod cap in
  t.aud_time.(v).(idx) <- time;
  t.aud_sender.(v).(idx) <- sender;
  t.aud_len.(v) <- t.aud_len.(v) + 1

let aud_prune t v ~horizon =
  let cap = Array.length t.aud_time.(v) in
  while t.aud_len.(v) > 0 && t.aud_time.(v).(t.aud_head.(v)) < horizon do
    t.aud_head.(v) <- (t.aud_head.(v) + 1) mod cap;
    t.aud_len.(v) <- t.aud_len.(v) - 1
  done

(* With interference modelling on, remember recent transmissions and prune
   entries that can no longer overlap anything. *)
let record_broadcast t node =
  match t.airtime with
  | None -> ()
  | Some airtime ->
    let horizon = t.now -. airtime -. (4.0 *. propagation_delay) in
    (match t.impl with
    | Reference ->
      Queue.add (t.now, node) t.recent_broadcasts;
      prune_queue t.recent_broadcasts ~horizon
    | Fast ->
      (* Fan the entry out to every position it is audible at (the sender's
         own — radios are half-duplex — and each neighbour's). *)
      aud_push t node ~time:t.now ~sender:node;
      aud_prune t node ~horizon;
      Array.iter
        (fun v ->
          aud_push t v ~time:t.now ~sender:node;
          aud_prune t v ~horizon)
        t.neighbours.(node))

(* A reception at [node] of a transmission sent at [tx_time] is jammed when
   any other audible transmission overlaps it (half-duplex: the receiver's
   own transmissions jam too).  The fast path scans only the transmissions
   audible at [node] and early-exits on the first overlap; entries the
   reference path would already have pruned from its global log are at least
   [airtime + 3·propagation_delay] older than any [tx_time] checked after
   them, so a lazily-pruned per-node queue never flips a verdict. *)
let jammed t ~node ~sender ~tx_time =
  match t.airtime with
  | None -> false
  | Some airtime -> (
    match t.impl with
    | Reference ->
      let graph = t.topology.Slpdas_wsn.Topology.graph in
      Queue.fold
        (fun acc (time, other) ->
          acc
          || (other <> sender
             && abs_float (time -. tx_time) < airtime
             && (other = node || Slpdas_wsn.Graph.mem_edge graph node other)))
        false t.recent_broadcasts
    | Fast ->
      let times = t.aud_time.(node) and senders = t.aud_sender.(node) in
      let cap = Array.length times in
      let head = t.aud_head.(node) and len = t.aud_len.(node) in
      let rec scan i =
        i < len
        &&
        let idx = (head + i) mod cap in
        (senders.(idx) <> sender
        && abs_float (times.(idx) -. tx_time) < airtime)
        || scan (i + 1)
      in
      scan 0)

let rec apply_effects t node effects =
  (* Every push below is attributed to [node]'s key lane; restored on exit
     so harness callbacks resume pushing on the -1 lane. *)
  let prev_src = t.cur_src in
  t.cur_src <- node;
  List.iter
    (fun effect_ ->
      match (effect_ : 'm Slpdas_gcn.effect_) with
      | Slpdas_gcn.Broadcast msg -> (
        Event.count_broadcast t.tally ~time:t.now;
        t.broadcast_by_node.(node) <- t.broadcast_by_node.(node) + 1;
        record_broadcast t node;
        if listening t then
          notify t (Event.Broadcast { time = t.now; sender = gid t node; msg });
        let faults = faults_active t in
        match t.coupling with
        | Some c -> coupled_broadcast t c node msg ~faults
        | None -> (
        match t.impl with
        | Reference ->
          Array.iter
            (fun v ->
              if
                Link_model.delivered t.link t.rng
                  ~distance_m:(distance t node v)
                && not (faults && fault_dropped t t.rng node v)
              then
                push t
                  ~at:(t.now +. propagation_delay)
                  (Deliver { node = v; sender = node; msg })
              else begin
                Event.count_drop t.tally ~collision:false ~time:t.now;
                if listening t then
                  notify t
                    (Event.Drop
                       { time = t.now; node = v; sender = node; collision = false })
              end)
            (Slpdas_wsn.Graph.neighbours t.topology.Slpdas_wsn.Topology.graph
               node)
        | Fast ->
          (* RNG draws happen here, eagerly, in adjacency order — exactly
             the reference draw sequence — and drops are counted at
             broadcast time like the reference path.  Only the delivery
             *arrivals* are deferred; above the batch cutover as one batch
             event, below it as singleton events pushed in the reference's
             own order (so small runs skip the batch-expansion overhead). *)
          let nbrs = t.neighbours.(node) in
          let deg = Array.length nbrs in
          let batch = t.batch_deliveries in
          let scratch = t.scratch in
          let count = ref 0 in
          let drop v =
            Event.count_drop t.tally ~collision:false ~time:t.now;
            if listening t then
              notify t
                (Event.Drop
                   { time = t.now; node = v; sender = node; collision = false })
          in
          (* [keep] runs the fault layer after the base verdict, mirroring
             the reference path's [&&] exactly (same conditional draws, same
             adjacency order). *)
          let keep v =
            if faults && fault_dropped t t.rng node v then drop v
            else if batch then begin
              Array.unsafe_set scratch !count v;
              incr count
            end
            else
              push t
                ~at:(t.now +. propagation_delay)
                (Deliver { node = v; sender = node; msg })
          in
          (match t.link_cache with
          | Always_delivered when not faults && batch ->
            Array.blit nbrs 0 scratch 0 deg;
            count := deg
          | Always_delivered -> Array.iter keep nbrs
          | Never_delivered -> Array.iter drop nbrs
          | Bernoulli_loss p ->
            for i = 0 to deg - 1 do
              let v = Array.unsafe_get nbrs i in
              if not (Slpdas_util.Rng.bernoulli t.rng p) then keep v
              else drop v
            done
          | Gaussian_rx { noise_mean; noise_std; snr_threshold; off; rx_power }
            ->
            let base = Array.unsafe_get off node in
            for i = 0 to deg - 1 do
              let v = Array.unsafe_get nbrs i in
              let noise =
                Slpdas_util.Rng.gaussian t.rng ~mean:noise_mean ~std:noise_std
              in
              if Array.unsafe_get rx_power (base + i) -. noise >= snr_threshold
              then keep v
              else drop v
            done);
          if batch && !count > 0 then
            push t
              ~at:(t.now +. propagation_delay)
              (Deliver_batch
                 { sender = node; recipients = Array.sub scratch 0 !count; msg })))
      | Slpdas_gcn.Set_timer { timer; after } ->
        let generation = bump_timer_generation t node timer in
        push t ~at:(t.now +. after) (Timer_fire { node; timer; generation })
      | Slpdas_gcn.Stop_timer timer ->
        ignore (bump_timer_generation t node timer))
    effects;
  t.cur_src <- prev_src

(* Coupled broadcast: walk the sender's local neighbours and boundary ports
   merged back into global-adjacency-row order ([ports_pos] marks the slots
   ports occupy; local neighbours, whose ascending local ids ascend globally
   too, fill the rest in order).  Every verdict draws from the sender's own
   lane, so the draw sequence is exactly the one the unsharded engine makes
   for this node's full row — whatever other cells are doing.  Deliveries
   stay singleton events (never batched) because a batch event would carry
   only its first delivery's stable key. *)
and coupled_broadcast t c node msg ~faults =
  let lane = c.lanes.(node) in
  let gnode = c.global_ids.(node) in
  let nbrs = t.neighbours.(node) in
  let p_lo = c.ports_off.(node) and p_hi = c.ports_off.(node + 1) in
  let total = Array.length nbrs + (p_hi - p_lo) in
  let at = t.now +. propagation_delay in
  let x1, y1 = t.topology.Slpdas_wsn.Topology.positions.(node) in
  let drop gv =
    Event.count_drop t.tally ~collision:false ~time:t.now;
    if listening t then
      notify t
        (Event.Drop { time = t.now; node = gv; sender = gnode; collision = false })
  in
  let li = ref 0 and pi = ref p_lo in
  for pos = 0 to total - 1 do
    if !pi < p_hi && Array.unsafe_get c.ports_pos !pi = pos then begin
      (* Cut neighbour. *)
      let i = !pi in
      incr pi;
      let target = Array.unsafe_get c.ports_target i in
      let delivered =
        match t.impl with
        | Reference ->
          Link_model.delivered t.link lane
            ~distance_m:
              (sqrt
                 (((x1 -. c.ports_x.(i)) ** 2.0)
                 +. ((y1 -. c.ports_y.(i)) ** 2.0)))
        | Fast -> (
          match t.link_cache with
          | Always_delivered -> true
          | Never_delivered -> false
          | Bernoulli_loss p -> not (Slpdas_util.Rng.bernoulli lane p)
          | Gaussian_rx { noise_mean; noise_std; snr_threshold; _ } ->
            let noise =
              Slpdas_util.Rng.gaussian lane ~mean:noise_mean ~std:noise_std
            in
            Array.unsafe_get t.port_rx i -. noise >= snr_threshold)
      in
      if not delivered then drop target
      else if
        (* Cut-edge link overrides are unsupported (Shard validates before a
           coupled run); only the network-wide loss floor applies, drawn
           from the sender's lane exactly as the unsharded engine draws it
           when no per-edge override matches. *)
        faults
        && t.global_loss > 0.0
        && Slpdas_util.Rng.bernoulli lane t.global_loss
      then drop target
      else begin
        (* The counter bump keeps this node's k2 numbering aligned with the
           unsharded engine, where this delivery is a local push. *)
        let s = t.sseq.(node) in
        t.sseq.(node) <- s + 1;
        c.send ~at ~src:gnode ~sseq:s ~target ~msg
      end
    end
    else begin
      let l = !li in
      incr li;
      let v = Array.unsafe_get nbrs l in
      let delivered =
        match t.impl with
        | Reference ->
          Link_model.delivered t.link lane ~distance_m:(distance t node v)
        | Fast -> (
          match t.link_cache with
          | Always_delivered -> true
          | Never_delivered -> false
          | Bernoulli_loss p -> not (Slpdas_util.Rng.bernoulli lane p)
          | Gaussian_rx { noise_mean; noise_std; snr_threshold; off; rx_power }
            ->
            let noise =
              Slpdas_util.Rng.gaussian lane ~mean:noise_mean ~std:noise_std
            in
            Array.unsafe_get rx_power (Array.unsafe_get off node + l) -. noise
            >= snr_threshold)
      in
      if not delivered then drop c.global_ids.(v)
      else if faults && fault_dropped t lane node v then drop c.global_ids.(v)
      else push t ~at (Deliver { node = v; sender = gnode; msg })
    end
  done

and inject t ~node trigger =
  (* Crash-stop failures: a failed node neither processes triggers nor emits
     effects. *)
  if not t.failed.(node) then begin
    let effects = Slpdas_gcn.Instance.deliver t.instances.(node) trigger in
    apply_effects t node effects
  end

let fail_node t v =
  if v < 0 || v >= Array.length t.failed then
    invalid_arg "Engine.fail_node: node out of range";
  if not t.failed.(v) then begin
    t.failed.(v) <- true;
    (* Cancel every pending timer of the node by bumping its generations.
       The fires would be swallowed by the [inject] failure guard anyway,
       but cancelling keeps them out of the event counts and lets the queue
       drain.  A bump never un-stales a pending fire (generations only
       grow), so Fast and Reference — whose stored generation values may
       differ for timers the node never armed — still agree on every
       staleness verdict. *)
    (match t.impl with
    | Fast ->
      let base = v * t.gen_stride in
      for i = base to base + t.gen_stride - 1 do
        t.gens.(i) <- t.gens.(i) + 1
      done
    | Reference ->
      Hashtbl.filter_map_inplace
        (fun (node, _) g -> if node = v then Some (g + 1) else Some g)
        t.timer_generations);
    emit t (Event.Node_failed { time = t.now; node = gid t v })
  end

let revive_node t v =
  if v < 0 || v >= Array.length t.failed then
    invalid_arg "Engine.revive_node: node out of range";
  if t.failed.(v) then begin
    t.failed.(v) <- false;
    (* The node rejoins as a fresh boot: crash-stop wiped its volatile
       state, so a brand-new instance runs [init] (and its spontaneous
       fixpoint) at the current time.  In-flight deliveries queued before
       the crash reach the fresh instance — identically in both impls. *)
    let self = gid t v in
    let instance, effects =
      Slpdas_gcn.Instance.create (t.program ~self) ~self
    in
    t.instances.(v) <- instance;
    emit t (Event.Node_revived { time = t.now; node = self });
    apply_effects t v effects
  end

let build_link_cache ~impl ~topology ~link ~neighbours =
  match impl with
  | Reference -> Always_delivered (* unused *)
  | Fast -> (
    match Link_model.prepare link with
    | Link_model.Static true -> Always_delivered
    | Link_model.Static false -> Never_delivered
    | Link_model.Bernoulli p -> Bernoulli_loss p
    | Link_model.Snr { noise_mean_dbm; noise_std_dbm; snr_threshold_db; rx_power_dbm }
      ->
      let positions = topology.Slpdas_wsn.Topology.positions in
      let n = Array.length neighbours in
      let off = Array.make (n + 1) 0 in
      for u = 0 to n - 1 do
        off.(u + 1) <- off.(u) + Array.length neighbours.(u)
      done;
      let rx_power = Array.make off.(n) 0.0 in
      Array.iteri
        (fun u row ->
          let x1, y1 = positions.(u) in
          let base = off.(u) in
          Array.iteri
            (fun i v ->
              (* Evaluated once per directed edge instead of once per
                 reception; the distance expression matches [distance]. *)
              let x2, y2 = positions.(v) in
              let distance_m =
                sqrt (((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0))
              in
              rx_power.(base + i) <- rx_power_dbm ~distance_m)
            row)
        neighbours;
      Gaussian_rx
        {
          noise_mean = noise_mean_dbm;
          noise_std = noise_std_dbm;
          snr_threshold = snr_threshold_db;
          off;
          rx_power;
        })

(* Below this node count the fast impl pushes singleton delivery events
   (reference order); above it, one batch event per broadcast.  Chosen so
   the paper-scale grids (11x11 … 21x21) take the lighter small-run path
   while anything approaching the ROADMAP's large deployments batches. *)
let default_batch_cutover = 1024

let create ?(impl = Fast) ?(batch_cutover = default_batch_cutover) ?airtime
    ?coupling ~topology ~link ~rng ~program () =
  let graph = topology.Slpdas_wsn.Topology.graph in
  let n = Slpdas_wsn.Graph.n graph in
  (match (coupling, airtime) with
  | Some _, Some _ ->
    invalid_arg
      "Engine.create: coupling is incompatible with airtime interference (a \
       transmission jams same-timestamp receptions across the cell boundary, \
       so the conservative lookahead window would be zero)"
  | _ -> ());
  (match coupling with
  | None -> ()
  | Some c ->
    if Array.length c.global_ids <> n then
      invalid_arg "Engine.create: coupling.global_ids must cover every node";
    if Array.length c.lanes <> n then
      invalid_arg "Engine.create: coupling.lanes must cover every node";
    if Array.length c.ports_off <> n + 1 then
      invalid_arg "Engine.create: coupling.ports_off must have n + 1 offsets");
  let cmp =
    match coupling with
    | None -> compare_events
    | Some _ -> compare_events_stable
  in
  let queue = Slpdas_util.Heap.create ~cmp in
  let self_of v =
    match coupling with None -> v | Some c -> c.global_ids.(v)
  in
  let boot =
    Array.init n (fun v ->
        let self = self_of v in
        Slpdas_gcn.Instance.create (program ~self) ~self)
  in
  (* Cut-edge rx powers for the Fast Gaussian path, computed with the same
     float expression as the local link cache so boundary verdicts match the
     unsharded engine's bit-for-bit. *)
  let port_rx =
    match (impl, coupling) with
    | Fast, Some c -> (
      match Link_model.prepare link with
      | Link_model.Static _ | Link_model.Bernoulli _ -> [||]
      | Link_model.Snr { rx_power_dbm; _ } ->
        let positions = topology.Slpdas_wsn.Topology.positions in
        let pr = Array.make (Array.length c.ports_target) 0.0 in
        for u = 0 to n - 1 do
          let x1, y1 = positions.(u) in
          for i = c.ports_off.(u) to c.ports_off.(u + 1) - 1 do
            pr.(i) <-
              rx_power_dbm
                ~distance_m:
                  (sqrt
                     (((x1 -. c.ports_x.(i)) ** 2.0)
                     +. ((y1 -. c.ports_y.(i)) ** 2.0)))
          done
        done;
        pr)
    | _ -> [||]
  in
  let neighbours = Array.init n (Slpdas_wsn.Graph.neighbours graph) in
  let max_degree =
    Array.fold_left (fun acc row -> max acc (Array.length row)) 0 neighbours
  in
  let timer_slots = max 1 (Slpdas_gcn.Timer.count ()) in
  let fast_airtime =
    match (impl, airtime) with Fast, Some _ -> true | _ -> false
  in
  let t =
    {
      topology;
      link;
      impl;
      airtime;
      recent_broadcasts = Queue.create ();
      aud_time =
        (if fast_airtime then Array.init n (fun _ -> Array.make 8 0.0)
         else [||]);
      aud_sender =
        (if fast_airtime then Array.init n (fun _ -> Array.make 8 0) else [||]);
      aud_head = (if fast_airtime then Array.make n 0 else [||]);
      aud_len = (if fast_airtime then Array.make n 0 else [||]);
      rng;
      program;
      instances = Array.map fst boot;
      queue;
      timer_generations =
        (* Reference-oracle bookkeeping only; Fast uses the flat gens rows.
           (* slp-lint: allow hot-path-hashtbl *) *)
        Hashtbl.create (match impl with Reference -> 4 * n | Fast -> 1);
      gens =
        (match impl with
        | Fast -> Array.make (n * timer_slots) 0
        | Reference -> [||]);
      gen_stride = (match impl with Fast -> timer_slots | Reference -> 0);
      link_cache = build_link_cache ~impl ~topology ~link ~neighbours;
      neighbours;
      batch_deliveries =
        (* Coupled engines never batch: a batch event would carry only its
           first delivery's stable key, breaking the schedule-independent
           interleave with other senders' events. *)
        (match (impl, coupling) with
        | Fast, None -> n > batch_cutover
        | _ -> false);
      scratch = Array.make max_degree 0;
      now = 0.0;
      next_seq = 0;
      subscribers = Queue.create ();
      tally = Event.tally_create ();
      broadcast_by_node = Array.make n 0;
      halted = false;
      failed = Array.make n false;
      link_overrides =
        (* Sparse fault-layer table, consulted only while overrides are
           active.  (* slp-lint: allow hot-path-hashtbl *) *)
        Hashtbl.create 8;
      global_loss = 0.0;
      coupling;
      port_rx;
      sseq = (match coupling with Some _ -> Array.make n 0 | None -> [||]);
      harness_sseq = 0;
      cur_src = -1;
      cur_k1 = -1;
      cur_k2 = -1;
    }
  in
  Array.iteri
    (fun v (_, effects) ->
      (* Boot emissions are observed under the boot key (global id, -1) —
         the same key whatever order cells boot their nodes in.  (Pushes
         made during boot take the node's own sseq lane via [push].) *)
      t.cur_k1 <- self_of v;
      t.cur_k2 <- -1;
      apply_effects t v effects)
    boot;
  t.cur_k1 <- -1;
  t.cur_k2 <- -1;
  t

(* [sender] is already an observable id: global ids are stored in [Deliver]
   events at push time under coupling, local (= global) ids otherwise. *)
let deliver_one t ~node ~sender ~tx_time msg =
  if jammed t ~node ~sender ~tx_time then begin
    Event.count_drop t.tally ~collision:true ~time:t.now;
    if listening t then
      notify t
        (Event.Drop
           { time = t.now; node = gid t node; sender; collision = true })
  end
  else begin
    Event.count_delivery t.tally ~time:t.now;
    if listening t then
      notify t (Event.Delivery { time = t.now; node = gid t node; sender; msg });
    inject t ~node (Slpdas_gcn.Receive { sender; msg })
  end

let process t event =
  t.now <- event.at;
  t.cur_k1 <- event.k1;
  t.cur_k2 <- event.k2;
  match event.kind with
  | Timer_fire { node; timer; generation } ->
    (* Stale fires (superseded by a later Set/Stop_timer) are dropped
       silently: they never reach the node, so they are not events. *)
    if generation = timer_generation t node timer then begin
      Event.count_timer_fire t.tally ~time:t.now;
      if listening t then
        notify t
          (Event.Timer_fire
             {
               time = t.now;
               node = gid t node;
               timer = Slpdas_gcn.Timer.name timer;
             });
      inject t ~node (Slpdas_gcn.Timeout timer)
    end
  | Deliver { node; sender; msg } ->
    deliver_one t ~node ~sender ~tx_time:(t.now -. propagation_delay) msg
  | Deliver_batch { sender; recipients; msg } ->
    (* Expand in push (= adjacency) order.  [halted] is re-checked between
       recipients because the reference impl's singleton events would stop
       being popped as soon as a subscriber called [stop]. *)
    let tx_time = t.now -. propagation_delay in
    let k = Array.length recipients in
    let i = ref 0 in
    while (not t.halted) && !i < k do
      deliver_one t ~node:recipients.(!i) ~sender ~tx_time msg;
      incr i
    done
  | Callback f -> f t

let step t =
  match Slpdas_util.Heap.pop t.queue with
  | None -> false
  | Some event ->
    process t event;
    true

let run_until t deadline =
  let rec loop () =
    if t.halted then ()
    else begin
      match Slpdas_util.Heap.peek t.queue with
      | Some event when event.at <= deadline ->
        ignore (Slpdas_util.Heap.pop t.queue);
        process t event;
        loop ()
      | Some _ | None -> t.now <- max t.now deadline
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Conservative-window driving surface (coupled sharding)             *)
(* ------------------------------------------------------------------ *)

let next_event_time t =
  match Slpdas_util.Heap.peek t.queue with
  | Some event -> Some event.at
  | None -> None

let run_window t ~stop_before ~deadline =
  let rec loop () =
    if t.halted then ()
    else
      match Slpdas_util.Heap.peek t.queue with
      | Some event when event.at < stop_before && event.at <= deadline ->
        ignore (Slpdas_util.Heap.pop t.queue);
        process t event;
        loop ()
      | Some _ | None -> ()
  in
  loop ()

let advance_to t time = if not t.halted then t.now <- max t.now time

let ingest_delivery t ~at ~src ~sseq ~node ~msg =
  (match t.coupling with
  | None -> invalid_arg "Engine.ingest_delivery: engine is not coupled"
  | Some _ -> ());
  if node < 0 || node >= Array.length t.failed then
    invalid_arg "Engine.ingest_delivery: node out of range";
  push_keyed t ~at ~k1:src ~k2:sseq (Deliver { node; sender = src; msg })

let processing_key t = (t.cur_k1, t.cur_k2)
