(* Deterministic boundary mailbox for coupled sharding: one per directed
   cell pair with at least one cut arc.  Struct-of-arrays growable buffer —
   flat unboxed rows for the numeric fields, one 'm row for payloads — so a
   window's worth of boundary traffic costs amortised-zero allocations
   (hot-path-hashtbl discipline: no per-entry boxes, no hashtables).

   Single-writer/single-reader by construction: only the source cell's
   domain pushes (during its window), only the coordinator drains (at the
   barrier); the pool's barrier provides the happens-before edge between
   the two. *)

type 'm t = {
  mutable at : float array;
  mutable src : int array;
  mutable sseq : int array;
  mutable node : int array;  (* destination-local node id *)
  mutable msg : 'm array;
  mutable len : int;
}

let create () =
  { at = [||]; src = [||]; sseq = [||]; node = [||]; msg = [||]; len = 0 }

let length t = t.len

let grow t m =
  let cap = Array.length t.at in
  let cap' = max 8 (2 * cap) in
  let at' = Array.make cap' 0.0
  and src' = Array.make cap' 0
  and sseq' = Array.make cap' 0
  and node' = Array.make cap' 0
  and msg' = Array.make cap' m in
  Array.blit t.at 0 at' 0 t.len;
  Array.blit t.src 0 src' 0 t.len;
  Array.blit t.sseq 0 sseq' 0 t.len;
  Array.blit t.node 0 node' 0 t.len;
  Array.blit t.msg 0 msg' 0 t.len;
  t.at <- at';
  t.src <- src';
  t.sseq <- sseq';
  t.node <- node';
  t.msg <- msg'

let push t ~at ~src ~sseq ~node ~msg =
  if t.len = Array.length t.at then grow t msg;
  let i = t.len in
  t.at.(i) <- at;
  t.src.(i) <- src;
  t.sseq.(i) <- sseq;
  t.node.(i) <- node;
  t.msg.(i) <- msg;
  t.len <- i + 1

(* (at, src, sseq) lexicographic order of entries [i] and [j]. *)
let entry_cmp t i j =
  match Float.compare t.at.(i) t.at.(j) with
  | 0 -> (
    match Int.compare t.src.(i) t.src.(j) with
    | 0 -> Int.compare t.sseq.(i) t.sseq.(j)
    | c -> c)
  | c -> c

let sorted t =
  let rec check i = i >= t.len || (entry_cmp t (i - 1) i <= 0 && check (i + 1)) in
  check 1

(* Entries arrive already sorted — the source cell pushes in processing
   order, which is (time, src, sseq) order — so the sort below is a pure
   safety net; a linear scan guards it. *)
let sort t =
  if not (sorted t) then begin
    let perm = Array.init t.len (fun i -> i) in
    Array.sort (entry_cmp t) perm;
    let at' = Array.init t.len (fun i -> t.at.(perm.(i)))
    and src' = Array.init t.len (fun i -> t.src.(perm.(i)))
    and sseq' = Array.init t.len (fun i -> t.sseq.(perm.(i)))
    and node' = Array.init t.len (fun i -> t.node.(perm.(i)))
    and msg' = Array.init t.len (fun i -> t.msg.(perm.(i))) in
    Array.blit at' 0 t.at 0 t.len;
    Array.blit src' 0 t.src 0 t.len;
    Array.blit sseq' 0 t.sseq 0 t.len;
    Array.blit node' 0 t.node 0 t.len;
    Array.blit msg' 0 t.msg 0 t.len
  end

let drain t f =
  if t.len > 0 then begin
    sort t;
    for i = 0 to t.len - 1 do
      f ~at:t.at.(i) ~src:t.src.(i) ~sseq:t.sseq.(i) ~node:t.node.(i)
        ~msg:t.msg.(i)
    done;
    t.len <- 0
  end
