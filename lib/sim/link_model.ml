type t =
  | Ideal
  | Lossy of float
  | Gaussian_noise of {
      tx_power_dbm : float;
      path_loss_exponent : float;
      reference_loss_dbm : float;
      noise_mean_dbm : float;
      noise_std_dbm : float;
      snr_threshold_db : float;
    }

let default_gaussian =
  Gaussian_noise
    {
      tx_power_dbm = 0.0;
      path_loss_exponent = 2.5;
      reference_loss_dbm = 40.0;
      noise_mean_dbm = -105.0;
      noise_std_dbm = 5.0;
      snr_threshold_db = 4.0;
    }

let delivered model rng ~distance_m =
  match model with
  | Ideal -> true
  | Lossy p -> not (Slpdas_util.Rng.bernoulli rng p)
  | Gaussian_noise g ->
    (* Log-distance path loss: PL(d) = PL(1m) + 10·γ·log10(d). *)
    let d = max distance_m 0.1 in
    let path_loss =
      g.reference_loss_dbm +. (10.0 *. g.path_loss_exponent *. log10 d)
    in
    let rx_power = g.tx_power_dbm -. path_loss in
    let noise =
      Slpdas_util.Rng.gaussian rng ~mean:g.noise_mean_dbm ~std:g.noise_std_dbm
    in
    rx_power -. noise >= g.snr_threshold_db

type prepared =
  | Static of bool
  | Bernoulli of float
  | Snr of {
      noise_mean_dbm : float;
      noise_std_dbm : float;
      snr_threshold_db : float;
      rx_power_dbm : distance_m:float -> float;
    }

let prepare = function
  | Ideal -> Static true
  | Lossy p ->
    (* Mirror Rng.bernoulli's degenerate cases, which draw nothing. *)
    if p <= 0.0 then Static true
    else if p >= 1.0 then Static false
    else Bernoulli p
  | Gaussian_noise g ->
    Snr
      {
        noise_mean_dbm = g.noise_mean_dbm;
        noise_std_dbm = g.noise_std_dbm;
        snr_threshold_db = g.snr_threshold_db;
        rx_power_dbm =
          (fun ~distance_m ->
            (* Same float expression as [delivered], so a cached rx power
               compared against the same sampled noise reproduces its
               verdict bit-for-bit. *)
            let d = max distance_m 0.1 in
            let path_loss =
              g.reference_loss_dbm +. (10.0 *. g.path_loss_exponent *. log10 d)
            in
            g.tx_power_dbm -. path_loss);
      }

let expected_delivery model ~distance_m ~samples rng =
  if samples <= 0 then invalid_arg "Link_model.expected_delivery: samples";
  let ok = ref 0 in
  for _ = 1 to samples do
    if delivered model rng ~distance_m then incr ok
  done;
  float_of_int !ok /. float_of_int samples

let pp ppf = function
  | Ideal -> Format.fprintf ppf "ideal"
  | Lossy p -> Format.fprintf ppf "lossy(p=%.3f)" p
  | Gaussian_noise g ->
    Format.fprintf ppf
      "gaussian-noise(tx=%.1fdBm, gamma=%.2f, noise=%.1f±%.1fdBm, thr=%.1fdB)"
      g.tx_power_dbm g.path_loss_exponent g.noise_mean_dbm g.noise_std_dbm
      g.snr_threshold_db
