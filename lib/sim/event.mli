(** Structured simulation events and deterministic per-run metrics.

    The engine's observability surface: instead of a single broadcast hook,
    every notable occurrence — radio transmissions, per-link deliveries,
    losses (link model or destructive interference), timer fires, and
    harness-level occurrences such as attacker moves and protocol phase
    transitions — is a typed event on one bus ({!Engine.subscribe}).

    Alongside the stream, every engine keeps an always-on {!counters}
    aggregate that is cheap enough for production runs, survives
    {!Slpdas_exp.Harness.run_many} fan-out (each run aggregates locally;
    aggregates {!merge} deterministically in input order), and exports as
    JSON for the CLI and bench. *)

type 'm t =
  | Broadcast of { time : float; sender : int; msg : 'm }
      (** A radio transmission, regardless of per-link delivery outcomes
          (an eavesdropper near the sender hears the transmission itself). *)
  | Delivery of { time : float; node : int; sender : int; msg : 'm }
      (** A successful reception at [node]. *)
  | Drop of { time : float; node : int; sender : int; collision : bool }
      (** A lost reception: [collision = false] means the link model refused
          delivery at transmission time; [collision = true] means airtime
          interference jammed it at arrival time. *)
  | Timer_fire of { time : float; node : int; timer : string }
      (** A non-stale timer expiration delivered to its node. *)
  | Attacker_move of { time : float; from_node : int; to_node : int }
      (** Emitted by the experiment harness when the eavesdropper moves. *)
  | Phase_transition of { time : float; phase : string }
      (** Emitted by the experiment harness at protocol phase boundaries. *)
  | Node_failed of { time : float; node : int }
      (** Emitted by {!Engine.fail_node} when a node crash-stops. *)
  | Node_revived of { time : float; node : int }
      (** Emitted by {!Engine.revive_node} when a crashed node reboots. *)
  | Link_changed of { time : float; a : int; b : int; loss : float }
      (** Emitted when a fault-layer link override changes: the edge
          [(a, b)] now drops deliveries with probability [loss] on top of
          the base link model ([loss = 0] restores it).  [a = b = -1]
          denotes the network-wide loss floor ({!Engine.set_global_loss}). *)

val time : 'm t -> float

val kind_name : 'm t -> string
(** Stable lowercase tag, e.g. ["broadcast"], ["drop-collision"]. *)

(** {1 Aggregates} *)

type counters = {
  runs : int;  (** engine runs aggregated into this value *)
  broadcasts : int;
  deliveries : int;
  drops_link : int;
  drops_collision : int;
  timer_fires : int;
  attacker_moves : int;
  phase_transitions : int;
  node_failures : int;
  node_revivals : int;
  link_changes : int;
  first_event : float option;  (** earliest event time over all runs *)
  last_event : float option;  (** latest event time over all runs *)
}

val empty : counters

val total : counters -> int
(** Sum of all event counts. *)

val merge : counters -> counters -> counters
(** Field-wise aggregation (sums; min/max for the time bounds).  Associative
    and commutative, so per-worker partial merges followed by an input-order
    fold give the same result as any sequential aggregation — the property
    that makes counters from parallel [run_many] byte-identical to the
    sequential run's. *)

val merge_all : counters list -> counters
(** Left fold of {!merge} over {!empty}, in list order. *)

val to_json : counters -> string
(** Render as a self-contained JSON object (counts plus first/last event
    times in seconds, [null] when no event occurred). *)

val pp : Format.formatter -> counters -> unit

(** {1 Per-run accumulation (used by the engine)} *)

type tally
(** Mutable single-run accumulator behind {!Engine.counters}. *)

val tally_create : unit -> tally

val record : tally -> 'm t -> unit
(** Count one event. *)

val count_broadcast : tally -> time:float -> unit
(** Allocation-free fast paths for the engine's hot loop; equivalent to
    {!record} of the corresponding event. *)

val count_delivery : tally -> time:float -> unit

val count_drop : tally -> collision:bool -> time:float -> unit

val count_timer_fire : tally -> time:float -> unit

val tally_broadcasts : tally -> int
(** Current broadcast count, without snapshotting. *)

val tally_deliveries : tally -> int

val snapshot : tally -> counters
(** Immutable copy with [runs = 1]. *)
