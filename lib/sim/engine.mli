(** Deterministic discrete-event simulation engine.

    The engine plays the role TOSSIM plays in the paper: it hosts one GCN
    program instance per node of a topology, delivers timer expirations and
    radio messages as events, and publishes everything that happens on a
    structured event bus ({!Event}) for observers such as the eavesdropping
    attacker, trace recorders and metric collectors.  Harness-driven control
    events (TDMA round boundaries, measurement probes) enter through
    {!schedule} and {!inject}; harness-level occurrences (attacker moves,
    phase transitions) can be published onto the same bus through {!emit}.

    Events are ordered by [(time, sequence number)], so runs are totally
    deterministic given the topology, the programs and the link-model RNG.
    Subscribing observers never perturbs the run: notifications are
    synchronous and queue nothing.

    Type parameters: ['s] is the per-node protocol state, ['m] the message
    type; all nodes run programs over the same state and message types. *)

type ('s, 'm) t

(** Engine implementation selector.

    [Fast] (the default) runs the precomputation-and-batching hot path: a
    per-topology link cache built at {!create} (delivery = one RNG draw and
    a compare), per-node [int array] timer generations indexed by interned
    {!Slpdas_gcn.Timer} ids, and one arrival event per broadcast expanded at
    pop time.  [Reference] runs the original per-neighbour-event,
    string-keyed implementation.  The two are observably equivalent — same
    RNG draw sequence, same event ordering, same counters, states and
    schedules — which the test suite enforces differentially; [Reference]
    exists as that oracle and as the benchmark baseline. *)
type impl = Fast | Reference

val default_batch_cutover : int
(** Node count above which the [Fast] impl folds each broadcast's arrivals
    into one batch event; at or below it, singleton delivery events are
    pushed in the [Reference] impl's own order, so small (paper-scale) runs
    skip the batch bookkeeping that only pays off on large networks.  The
    two regimes are observably identical — the cutover trades constant
    factors only. *)

val create :
  ?impl:impl ->
  ?batch_cutover:int ->
  ?airtime:float ->
  topology:Slpdas_wsn.Topology.t ->
  link:Link_model.t ->
  rng:Slpdas_util.Rng.t ->
  program:(self:int -> ('s, 'm) Slpdas_gcn.program) ->
  unit ->
  ('s, 'm) t
(** [create ~topology ~link ~rng ~program ()] boots [program ~self:v] for every
    node [v] at time 0 and queues their boot effects.  [rng] drives link-loss
    sampling only; protocol-level randomness belongs in the programs
    themselves.

    [batch_cutover] (default {!default_batch_cutover}) selects the [Fast]
    impl's delivery regime by node count; tests pass [~batch_cutover:0] to
    force batching on small topologies so the differential oracle covers
    both regimes.

    [airtime] enables destructive-interference modelling: each transmission
    occupies the channel for [airtime] seconds, and a reception at [v] is
    destroyed when any {e other} transmission audible at [v] (a neighbour's,
    or [v]'s own — radios are half-duplex) overlaps it.  The paper's TDMA
    slots exist precisely to prevent this; with [airtime] set, schedules
    violating the 2-hop collision-freedom of Def. 1 measurably lose data
    while collision-free ones do not.  Omitted (default), transmissions are
    instantaneous and never interfere, matching the paper's ideal
    communication model. *)

val time : ('s, 'm) t -> float
(** Current simulation time in seconds. *)

val topology : ('s, 'm) t -> Slpdas_wsn.Topology.t

val node_state : ('s, 'm) t -> int -> 's
(** Observe a node's current protocol state. *)

val node_fired : ('s, 'm) t -> int -> string list
(** Action-name trace of a node, most recent first. *)

val subscribe : ('s, 'm) t -> ('m Event.t -> unit) -> unit
(** Register an observer on the event bus, invoked synchronously (in
    registration order) for every {!Event.t} the run produces: broadcasts,
    deliveries, drops, timer fires, and any harness events published with
    {!emit}.  This replaces the engine's former single [on_broadcast] hook;
    an eavesdropper filters for [Event.Broadcast] (it hears transmissions
    regardless of per-link delivery outcomes). *)

val emit : ('s, 'm) t -> 'm Event.t -> unit
(** Publish a harness-level event (attacker move, phase transition, …) to
    all subscribers and count it in {!counters}.  Emission is synchronous
    and does not enter the simulation queue, so it never affects protocol
    execution. *)

val counters : ('s, 'm) t -> Event.counters
(** Always-on per-run aggregate of every event so far (including drops and
    harness events), maintained whether or not anyone subscribed. *)

val schedule : ('s, 'm) t -> at:float -> (('s, 'm) t -> unit) -> unit
(** [schedule t ~at f] queues the harness callback [f] at absolute time
    [at].  Callbacks may inject triggers, schedule further callbacks or stop
    the run.  @raise Invalid_argument if [at] is in the past. *)

val inject : ('s, 'm) t -> node:int -> 'm Slpdas_gcn.trigger -> unit
(** [inject t ~node trigger] delivers a trigger to a node immediately (at the
    current time), processing any resulting effects.  Used by the harness for
    [Round_end] and by tests. *)

val broadcasts : ('s, 'm) t -> int
(** Total number of radio transmissions so far (the paper's message-overhead
    metric counts transmissions, not receptions). *)

val broadcasts_by_node : ('s, 'm) t -> int array
(** Per-node transmission counts. *)

val deliveries : ('s, 'm) t -> int
(** Total successful receptions so far. *)

val stop : ('s, 'm) t -> unit
(** Request that [run_until] return after the current event. *)

val stopped : ('s, 'm) t -> bool

val fail_node : ('s, 'm) t -> int -> unit
(** [fail_node t v] crash-stops node [v]: from now on it processes no
    triggers (timers, receptions, injections) and emits nothing.  Its last
    state remains observable through {!node_state}.  The node's pending
    timers are cancelled, and an {!Event.Node_failed} event is published
    and counted.  Idempotent; reversible with {!revive_node}.
    @raise Invalid_argument if [v] is out of range. *)

val revive_node : ('s, 'm) t -> int -> unit
(** [revive_node t v] reboots a crashed node: a fresh program instance is
    created for [v] (crash-stop wiped its volatile state) and its boot
    effects are applied at the current time, after an {!Event.Node_revived}
    event is published.  No-op if [v] is not failed.
    @raise Invalid_argument if [v] is out of range. *)

val node_failed : ('s, 'm) t -> int -> bool

(** {2 Fault layer}

    A link-override table layered on top of the base {!Link_model}: each
    override adds an extra, independent loss probability for one edge
    (or, via {!set_global_loss}, for every delivery).  The layer is
    consulted only after the base model delivers and only while at least
    one override is active, so fault-free runs consume exactly the RNG
    draws they always did — the engine-equivalence contract extends to
    runs with faults. *)

val set_link_loss : ('s, 'm) t -> a:int -> b:int -> float -> unit
(** [set_link_loss t ~a ~b p] makes deliveries on the (undirected) edge
    [(a, b)] additionally fail with probability [p] (clamped to [\[0,1\]];
    [1] is a hard link-down, [0] removes the override).  Publishes and
    counts an {!Event.Link_changed} event.
    @raise Invalid_argument if a node is out of range. *)

val link_loss : ('s, 'm) t -> a:int -> b:int -> float
(** Current override for an edge; [0] when none. *)

val set_global_loss : ('s, 'm) t -> float -> unit
(** [set_global_loss t p] makes {e every} delivery additionally fail with
    probability [p] (clamped; [0] switches the burst off) — transient
    message-loss bursts.  Publishes an {!Event.Link_changed} event with
    [a = b = -1]. *)

val global_loss : ('s, 'm) t -> float

val step : ('s, 'm) t -> bool
(** Process the next event.  [false] iff the queue was empty.  Under the
    [Fast] impl all of a broadcast's arrivals form one batch event, so a
    single [step] may process several receptions that the [Reference] impl
    spreads over as many steps; {!run_until}-driven outcomes are
    unaffected. *)

val run_until : ('s, 'm) t -> float -> unit
(** [run_until t deadline] processes events with time ≤ [deadline] (or until
    {!stop} / queue exhaustion) and advances the clock to [deadline] if not
    stopped early. *)
