(** Deterministic discrete-event simulation engine.

    The engine plays the role TOSSIM plays in the paper: it hosts one GCN
    program instance per node of a topology, delivers timer expirations and
    radio messages as events, and publishes everything that happens on a
    structured event bus ({!Event}) for observers such as the eavesdropping
    attacker, trace recorders and metric collectors.  Harness-driven control
    events (TDMA round boundaries, measurement probes) enter through
    {!schedule} and {!inject}; harness-level occurrences (attacker moves,
    phase transitions) can be published onto the same bus through {!emit}.

    Events are ordered by [(time, sequence number)], so runs are totally
    deterministic given the topology, the programs and the link-model RNG.
    Subscribing observers never perturbs the run: notifications are
    synchronous and queue nothing.

    Type parameters: ['s] is the per-node protocol state, ['m] the message
    type; all nodes run programs over the same state and message types. *)

type ('s, 'm) t

(** Engine implementation selector.

    [Fast] (the default) runs the precomputation-and-batching hot path: a
    per-topology link cache built at {!create} (delivery = one RNG draw and
    a compare), per-node [int array] timer generations indexed by interned
    {!Slpdas_gcn.Timer} ids, and one arrival event per broadcast expanded at
    pop time.  [Reference] runs the original per-neighbour-event,
    string-keyed implementation.  The two are observably equivalent — same
    RNG draw sequence, same event ordering, same counters, states and
    schedules — which the test suite enforces differentially; [Reference]
    exists as that oracle and as the benchmark baseline. *)
type impl = Fast | Reference

val propagation_delay : float
(** Uniform link latency in seconds between a transmission and its arrivals.
    Also the conservative lookahead horizon of coupled sharded runs: an
    event processed at time [s] can influence another cell no earlier than
    [s + propagation_delay], so cells may run [propagation_delay]-wide
    windows independently and exchange boundary deliveries at barriers. *)

(** Coupled-cell wiring (built by {!Shard}): the engine hosts one cell of a
    larger deployment whose cut edges were kept as boundary ports.

    [global_ids.(v)] is local node [v]'s identity in the base deployment
    (strictly ascending, so local order is global order); programs are
    booted with the {e global} self and every event on the bus reports
    global ids.  [lanes.(v)] is the node's private RNG stream: all draws a
    broadcast by [v] makes (link verdicts, fault-layer draws) come from it,
    in full global-adjacency-row order — local neighbours and ports merged
    back into their original positions via [ports_pos] — so the draw
    sequence depends only on [v]'s own broadcast history, never on the cell
    decomposition.  [ports_off] is a CSR row index (length [n + 1]) into the
    flat port arrays; [ports_target]/[ports_x]/[ports_y] give each cut
    neighbour's global id and coordinates.  [send] is invoked for every
    boundary delivery with the absolute arrival time, the {e global} sender
    id, the sender's push counter (the stable-key [k2] the unsharded engine
    would have assigned) and the {e global} target id; the hosting shard
    buffers it for {!ingest_delivery} into the destination cell at the next
    window barrier. *)
type 'm coupling = {
  global_ids : int array;
  lanes : Slpdas_util.Rng.t array;
  ports_off : int array;
  ports_pos : int array;
  ports_target : int array;
  ports_x : float array;
  ports_y : float array;
  send : at:float -> src:int -> sseq:int -> target:int -> msg:'m -> unit;
}

val default_batch_cutover : int
(** Node count above which the [Fast] impl folds each broadcast's arrivals
    into one batch event; at or below it, singleton delivery events are
    pushed in the [Reference] impl's own order, so small (paper-scale) runs
    skip the batch bookkeeping that only pays off on large networks.  The
    two regimes are observably identical — the cutover trades constant
    factors only. *)

val create :
  ?impl:impl ->
  ?batch_cutover:int ->
  ?airtime:float ->
  ?coupling:'m coupling ->
  topology:Slpdas_wsn.Topology.t ->
  link:Link_model.t ->
  rng:Slpdas_util.Rng.t ->
  program:(self:int -> ('s, 'm) Slpdas_gcn.program) ->
  unit ->
  ('s, 'm) t
(** [create ~topology ~link ~rng ~program ()] boots [program ~self:v] for every
    node [v] at time 0 and queues their boot effects.  [rng] drives link-loss
    sampling only; protocol-level randomness belongs in the programs
    themselves.

    [batch_cutover] (default {!default_batch_cutover}) selects the [Fast]
    impl's delivery regime by node count; tests pass [~batch_cutover:0] to
    force batching on small topologies so the differential oracle covers
    both regimes.

    [airtime] enables destructive-interference modelling: each transmission
    occupies the channel for [airtime] seconds, and a reception at [v] is
    destroyed when any {e other} transmission audible at [v] (a neighbour's,
    or [v]'s own — radios are half-duplex) overlaps it.  The paper's TDMA
    slots exist precisely to prevent this; with [airtime] set, schedules
    violating the 2-hop collision-freedom of Def. 1 measurably lose data
    while collision-free ones do not.  Omitted (default), transmissions are
    instantaneous and never interfere, matching the paper's ideal
    communication model.

    [coupling] hosts the topology as one cell of a larger deployment (see
    {!type:coupling}): programs boot with global selves, events report
    global ids, same-time events are ordered by the schedule-independent
    stable key [(k1, k2)] instead of push order, every node draws from its
    own RNG lane ([rng] is then unused), and deliveries never batch.  A
    coupled run driven through {!run_window}/{!ingest_delivery} barriers is
    byte-identical to the unsharded sequential engine built with the
    identity coupling over the base deployment.
    @raise Invalid_argument if [coupling] is combined with [airtime]
    (cross-boundary interference has zero latency, so no positive lookahead
    window exists), or if the coupling arrays do not cover the topology. *)

val time : ('s, 'm) t -> float
(** Current simulation time in seconds. *)

val topology : ('s, 'm) t -> Slpdas_wsn.Topology.t

val node_state : ('s, 'm) t -> int -> 's
(** Observe a node's current protocol state. *)

val node_fired : ('s, 'm) t -> int -> string list
(** Action-name trace of a node, most recent first. *)

val subscribe : ('s, 'm) t -> ('m Event.t -> unit) -> unit
(** Register an observer on the event bus, invoked synchronously (in
    registration order) for every {!Event.t} the run produces: broadcasts,
    deliveries, drops, timer fires, and any harness events published with
    {!emit}.  This replaces the engine's former single [on_broadcast] hook;
    an eavesdropper filters for [Event.Broadcast] (it hears transmissions
    regardless of per-link delivery outcomes). *)

val emit : ('s, 'm) t -> 'm Event.t -> unit
(** Publish a harness-level event (attacker move, phase transition, …) to
    all subscribers and count it in {!counters}.  Emission is synchronous
    and does not enter the simulation queue, so it never affects protocol
    execution. *)

val counters : ('s, 'm) t -> Event.counters
(** Always-on per-run aggregate of every event so far (including drops and
    harness events), maintained whether or not anyone subscribed. *)

val schedule : ('s, 'm) t -> at:float -> (('s, 'm) t -> unit) -> unit
(** [schedule t ~at f] queues the harness callback [f] at absolute time
    [at].  Callbacks may inject triggers, schedule further callbacks or stop
    the run.  @raise Invalid_argument if [at] is in the past. *)

val inject : ('s, 'm) t -> node:int -> 'm Slpdas_gcn.trigger -> unit
(** [inject t ~node trigger] delivers a trigger to a node immediately (at the
    current time), processing any resulting effects.  Used by the harness for
    [Round_end] and by tests. *)

val broadcasts : ('s, 'm) t -> int
(** Total number of radio transmissions so far (the paper's message-overhead
    metric counts transmissions, not receptions). *)

val broadcasts_by_node : ('s, 'm) t -> int array
(** Per-node transmission counts. *)

val deliveries : ('s, 'm) t -> int
(** Total successful receptions so far. *)

val stop : ('s, 'm) t -> unit
(** Request that [run_until] return after the current event. *)

val stopped : ('s, 'm) t -> bool

val fail_node : ('s, 'm) t -> int -> unit
(** [fail_node t v] crash-stops node [v]: from now on it processes no
    triggers (timers, receptions, injections) and emits nothing.  Its last
    state remains observable through {!node_state}.  The node's pending
    timers are cancelled, and an {!Event.Node_failed} event is published
    and counted.  Idempotent; reversible with {!revive_node}.
    @raise Invalid_argument if [v] is out of range. *)

val revive_node : ('s, 'm) t -> int -> unit
(** [revive_node t v] reboots a crashed node: a fresh program instance is
    created for [v] (crash-stop wiped its volatile state) and its boot
    effects are applied at the current time, after an {!Event.Node_revived}
    event is published.  No-op if [v] is not failed.
    @raise Invalid_argument if [v] is out of range. *)

val node_failed : ('s, 'm) t -> int -> bool

(** {2 Fault layer}

    A link-override table layered on top of the base {!Link_model}: each
    override adds an extra, independent loss probability for one edge
    (or, via {!set_global_loss}, for every delivery).  The layer is
    consulted only after the base model delivers and only while at least
    one override is active, so fault-free runs consume exactly the RNG
    draws they always did — the engine-equivalence contract extends to
    runs with faults. *)

val set_link_loss : ('s, 'm) t -> a:int -> b:int -> float -> unit
(** [set_link_loss t ~a ~b p] makes deliveries on the (undirected) edge
    [(a, b)] additionally fail with probability [p] (clamped to [\[0,1\]];
    [1] is a hard link-down, [0] removes the override).  Publishes and
    counts an {!Event.Link_changed} event.
    @raise Invalid_argument if a node is out of range. *)

val link_loss : ('s, 'm) t -> a:int -> b:int -> float
(** Current override for an edge; [0] when none. *)

val set_global_loss : ('s, 'm) t -> float -> unit
(** [set_global_loss t p] makes {e every} delivery additionally fail with
    probability [p] (clamped; [0] switches the burst off) — transient
    message-loss bursts.  Publishes an {!Event.Link_changed} event with
    [a = b = -1]. *)

val global_loss : ('s, 'm) t -> float

val step : ('s, 'm) t -> bool
(** Process the next event.  [false] iff the queue was empty.  Under the
    [Fast] impl all of a broadcast's arrivals form one batch event, so a
    single [step] may process several receptions that the [Reference] impl
    spreads over as many steps; {!run_until}-driven outcomes are
    unaffected. *)

val run_until : ('s, 'm) t -> float -> unit
(** [run_until t deadline] processes events with time ≤ [deadline] (or until
    {!stop} / queue exhaustion) and advances the clock to [deadline] if not
    stopped early. *)

(** {2 Conservative windows (coupled sharding)}

    The driving surface {!Shard.run_coupled} uses: cells repeatedly run the
    half-open window [\[t_next, t_next + propagation_delay)] — where
    [t_next] is the minimum {!next_event_time} over all cells — then
    exchange the boundary deliveries their [send] hooks produced via
    {!ingest_delivery} at the barrier.  Any event processed inside the
    window sends cross-boundary arrivals no earlier than the window's end,
    so every cell always holds {e all} of its events below the window bound
    before running it — the classic null-message-free conservative
    guarantee. *)

val next_event_time : ('s, 'm) t -> float option
(** Timestamp of the earliest pending event, if any. *)

val run_window : ('s, 'm) t -> stop_before:float -> deadline:float -> unit
(** [run_window t ~stop_before ~deadline] processes events with
    time < [stop_before] and time ≤ [deadline], in queue order, without
    advancing the clock past the last processed event (use {!advance_to}
    once the whole coupled run is over). *)

val advance_to : ('s, 'm) t -> float -> unit
(** Advance the clock to [max now time] (no-op when stopped), mirroring the
    final clock advance of {!run_until}. *)

val ingest_delivery :
  ('s, 'm) t -> at:float -> src:int -> sseq:int -> node:int -> msg:'m -> unit
(** [ingest_delivery t ~at ~src ~sseq ~node ~msg] enqueues a boundary
    delivery produced by a neighbouring cell's [send] hook: a [Deliver]
    event at absolute time [at] for {e local} node [node] from {e global}
    sender [src], keyed [(src, sseq)] — the stable key the unsharded engine
    assigned to the same push, so the destination heap interleaves it
    exactly where the sequential run would.
    @raise Invalid_argument on an uncoupled engine or if [node] is out of
    range. *)

val processing_key : ('s, 'm) t -> int * int
(** Stable key [(k1, k2)] of the event currently being processed — during
    boot, [(global id, -1)] of the booting node; [(-1, _)] under harness
    callbacks.  Observers use it to merge per-cell event streams into the
    sequential emission order: sorting buffered emissions by
    [(time, k1, k2, buffer position)] reproduces the unsharded engine's
    order for all node-sourced events. *)
