(** Deterministic discrete-event simulation engine.

    The engine plays the role TOSSIM plays in the paper: it hosts one GCN
    program instance per node of a topology, delivers timer expirations and
    radio messages as events, and exposes hooks for observers such as the
    eavesdropping attacker and for harness-driven control events (TDMA round
    boundaries, measurement probes).

    Events are ordered by [(time, sequence number)], so runs are totally
    deterministic given the topology, the programs and the link-model RNG.

    Type parameters: ['s] is the per-node protocol state, ['m] the message
    type; all nodes run programs over the same state and message types. *)

type ('s, 'm) t

val create :
  ?airtime:float ->
  topology:Slpdas_wsn.Topology.t ->
  link:Link_model.t ->
  rng:Slpdas_util.Rng.t ->
  program:(self:int -> ('s, 'm) Slpdas_gcn.program) ->
  unit ->
  ('s, 'm) t
(** [create ~topology ~link ~rng ~program ()] boots [program ~self:v] for every
    node [v] at time 0 and queues their boot effects.  [rng] drives link-loss
    sampling only; protocol-level randomness belongs in the programs
    themselves.

    [airtime] enables destructive-interference modelling: each transmission
    occupies the channel for [airtime] seconds, and a reception at [v] is
    destroyed when any {e other} transmission audible at [v] (a neighbour's,
    or [v]'s own — radios are half-duplex) overlaps it.  The paper's TDMA
    slots exist precisely to prevent this; with [airtime] set, schedules
    violating the 2-hop collision-freedom of Def. 1 measurably lose data
    while collision-free ones do not.  Omitted (default), transmissions are
    instantaneous and never interfere, matching the paper's ideal
    communication model. *)

val time : ('s, 'm) t -> float
(** Current simulation time in seconds. *)

val topology : ('s, 'm) t -> Slpdas_wsn.Topology.t

val node_state : ('s, 'm) t -> int -> 's
(** Observe a node's current protocol state. *)

val node_fired : ('s, 'm) t -> int -> string list
(** Action-name trace of a node, most recent first. *)

val on_broadcast : ('s, 'm) t -> (time:float -> sender:int -> 'm -> unit) -> unit
(** Register an observer invoked synchronously at every radio broadcast,
    regardless of per-link delivery outcomes (an eavesdropper close to the
    sender hears the transmission itself).  Used by the attacker and by
    message-overhead metering. *)

val schedule : ('s, 'm) t -> at:float -> (('s, 'm) t -> unit) -> unit
(** [schedule t ~at f] queues the harness callback [f] at absolute time
    [at].  Callbacks may inject triggers, schedule further callbacks or stop
    the run.  @raise Invalid_argument if [at] is in the past. *)

val inject : ('s, 'm) t -> node:int -> 'm Slpdas_gcn.trigger -> unit
(** [inject t ~node trigger] delivers a trigger to a node immediately (at the
    current time), processing any resulting effects.  Used by the harness for
    [Round_end] and by tests. *)

val broadcasts : ('s, 'm) t -> int
(** Total number of radio transmissions so far (the paper's message-overhead
    metric counts transmissions, not receptions). *)

val broadcasts_by_node : ('s, 'm) t -> int array
(** Per-node transmission counts. *)

val deliveries : ('s, 'm) t -> int
(** Total successful receptions so far. *)

val stop : ('s, 'm) t -> unit
(** Request that [run_until] return after the current event. *)

val stopped : ('s, 'm) t -> bool

val fail_node : ('s, 'm) t -> int -> unit
(** [fail_node t v] crash-stops node [v]: from now on it processes no
    triggers (timers, receptions, injections) and emits nothing.  Its last
    state remains observable through {!node_state}.  Used by
    fault-injection experiments; irreversible.
    @raise Invalid_argument if [v] is out of range. *)

val node_failed : ('s, 'm) t -> int -> bool

val step : ('s, 'm) t -> bool
(** Process the next event.  [false] iff the queue was empty. *)

val run_until : ('s, 'm) t -> float -> unit
(** [run_until t deadline] processes events with time ≤ [deadline] (or until
    {!stop} / queue exhaustion) and advances the clock to [deadline] if not
    stopped early. *)
