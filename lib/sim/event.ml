type 'm t =
  | Broadcast of { time : float; sender : int; msg : 'm }
  | Delivery of { time : float; node : int; sender : int; msg : 'm }
  | Drop of { time : float; node : int; sender : int; collision : bool }
  | Timer_fire of { time : float; node : int; timer : string }
  | Attacker_move of { time : float; from_node : int; to_node : int }
  | Phase_transition of { time : float; phase : string }
  | Node_failed of { time : float; node : int }
  | Node_revived of { time : float; node : int }
  | Link_changed of { time : float; a : int; b : int; loss : float }

let time = function
  | Broadcast { time; _ }
  | Delivery { time; _ }
  | Drop { time; _ }
  | Timer_fire { time; _ }
  | Attacker_move { time; _ }
  | Phase_transition { time; _ }
  | Node_failed { time; _ }
  | Node_revived { time; _ }
  | Link_changed { time; _ } -> time

let kind_name = function
  | Broadcast _ -> "broadcast"
  | Delivery _ -> "delivery"
  | Drop { collision = false; _ } -> "drop-link"
  | Drop { collision = true; _ } -> "drop-collision"
  | Timer_fire _ -> "timer"
  | Attacker_move _ -> "attacker-move"
  | Phase_transition _ -> "phase"
  | Node_failed _ -> "node-failed"
  | Node_revived _ -> "node-revived"
  | Link_changed _ -> "link-changed"

type counters = {
  runs : int;
  broadcasts : int;
  deliveries : int;
  drops_link : int;
  drops_collision : int;
  timer_fires : int;
  attacker_moves : int;
  phase_transitions : int;
  node_failures : int;
  node_revivals : int;
  link_changes : int;
  first_event : float option;
  last_event : float option;
}

let empty =
  {
    runs = 0;
    broadcasts = 0;
    deliveries = 0;
    drops_link = 0;
    drops_collision = 0;
    timer_fires = 0;
    attacker_moves = 0;
    phase_transitions = 0;
    node_failures = 0;
    node_revivals = 0;
    link_changes = 0;
    first_event = None;
    last_event = None;
  }

let total c =
  c.broadcasts + c.deliveries + c.drops_link + c.drops_collision
  + c.timer_fires + c.attacker_moves + c.phase_transitions + c.node_failures
  + c.node_revivals + c.link_changes

let omin a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Float.min a b)

let omax a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Float.max a b)

(* Every field combiner is associative and commutative, so any grouping of
   per-worker partial merges gives the same aggregate; the harness merges in
   input order for definiteness. *)
let merge a b =
  {
    runs = a.runs + b.runs;
    broadcasts = a.broadcasts + b.broadcasts;
    deliveries = a.deliveries + b.deliveries;
    drops_link = a.drops_link + b.drops_link;
    drops_collision = a.drops_collision + b.drops_collision;
    timer_fires = a.timer_fires + b.timer_fires;
    attacker_moves = a.attacker_moves + b.attacker_moves;
    phase_transitions = a.phase_transitions + b.phase_transitions;
    node_failures = a.node_failures + b.node_failures;
    node_revivals = a.node_revivals + b.node_revivals;
    link_changes = a.link_changes + b.link_changes;
    first_event = omin a.first_event b.first_event;
    last_event = omax a.last_event b.last_event;
  }

let merge_all cs = List.fold_left merge empty cs

(* First/last-event times are kept as raw floats with infinity sentinels and
   converted to options at [snapshot]: [last_event] improves on nearly every
   event, and a [float option] would re-box a [Some] each time — a per-event
   allocation on the engine's hottest path. *)
type tally = {
  mutable t_broadcasts : int;
  mutable t_deliveries : int;
  mutable t_drops_link : int;
  mutable t_drops_collision : int;
  mutable t_timer_fires : int;
  mutable t_attacker_moves : int;
  mutable t_phase_transitions : int;
  mutable t_node_failures : int;
  mutable t_node_revivals : int;
  mutable t_link_changes : int;
  mutable t_first_event : float;  (* infinity = none yet *)
  mutable t_last_event : float;  (* neg_infinity = none yet *)
}

let tally_create () =
  {
    t_broadcasts = 0;
    t_deliveries = 0;
    t_drops_link = 0;
    t_drops_collision = 0;
    t_timer_fires = 0;
    t_attacker_moves = 0;
    t_phase_transitions = 0;
    t_node_failures = 0;
    t_node_revivals = 0;
    t_link_changes = 0;
    t_first_event = infinity;
    t_last_event = neg_infinity;
  }

let touch ta time =
  if time < ta.t_first_event then ta.t_first_event <- time;
  if time > ta.t_last_event then ta.t_last_event <- time

(* Count without allocating an event value: the engine's hot paths call
   these directly and only build the event record when subscribers exist. *)
let count_broadcast ta ~time =
  ta.t_broadcasts <- ta.t_broadcasts + 1;
  touch ta time

let count_delivery ta ~time =
  ta.t_deliveries <- ta.t_deliveries + 1;
  touch ta time

let count_drop ta ~collision ~time =
  if collision then ta.t_drops_collision <- ta.t_drops_collision + 1
  else ta.t_drops_link <- ta.t_drops_link + 1;
  touch ta time

let count_timer_fire ta ~time =
  ta.t_timer_fires <- ta.t_timer_fires + 1;
  touch ta time

let record ta = function
  | Broadcast { time; _ } -> count_broadcast ta ~time
  | Delivery { time; _ } -> count_delivery ta ~time
  | Drop { time; collision; _ } -> count_drop ta ~collision ~time
  | Timer_fire { time; _ } -> count_timer_fire ta ~time
  | Attacker_move { time; _ } ->
    ta.t_attacker_moves <- ta.t_attacker_moves + 1;
    touch ta time
  | Phase_transition { time; _ } ->
    ta.t_phase_transitions <- ta.t_phase_transitions + 1;
    touch ta time
  | Node_failed { time; _ } ->
    ta.t_node_failures <- ta.t_node_failures + 1;
    touch ta time
  | Node_revived { time; _ } ->
    ta.t_node_revivals <- ta.t_node_revivals + 1;
    touch ta time
  | Link_changed { time; _ } ->
    ta.t_link_changes <- ta.t_link_changes + 1;
    touch ta time

let tally_broadcasts ta = ta.t_broadcasts

let tally_deliveries ta = ta.t_deliveries

let snapshot ta =
  {
    runs = 1;
    broadcasts = ta.t_broadcasts;
    deliveries = ta.t_deliveries;
    drops_link = ta.t_drops_link;
    drops_collision = ta.t_drops_collision;
    timer_fires = ta.t_timer_fires;
    attacker_moves = ta.t_attacker_moves;
    phase_transitions = ta.t_phase_transitions;
    node_failures = ta.t_node_failures;
    node_revivals = ta.t_node_revivals;
    link_changes = ta.t_link_changes;
    first_event =
      (if ta.t_first_event = infinity then None else Some ta.t_first_event);
    last_event =
      (if ta.t_last_event = neg_infinity then None else Some ta.t_last_event);
  }

let to_json c =
  let b = Buffer.create 256 in
  let field name v = Printf.bprintf b "  %S: %d,\n" name v in
  Buffer.add_string b "{\n";
  field "runs" c.runs;
  field "broadcasts" c.broadcasts;
  field "deliveries" c.deliveries;
  field "drops_link" c.drops_link;
  field "drops_collision" c.drops_collision;
  field "timer_fires" c.timer_fires;
  field "attacker_moves" c.attacker_moves;
  field "phase_transitions" c.phase_transitions;
  field "node_failures" c.node_failures;
  field "node_revivals" c.node_revivals;
  field "link_changes" c.link_changes;
  field "total_events" (total c);
  let time_field name v =
    Printf.bprintf b "  %S: %s" name
      (match v with None -> "null" | Some t -> Printf.sprintf "%.6f" t)
  in
  time_field "first_event_s" c.first_event;
  Buffer.add_string b ",\n";
  time_field "last_event_s" c.last_event;
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let pp ppf c =
  Format.fprintf ppf
    "@[<v>runs %d: %d broadcasts, %d deliveries, %d drops (%d link, %d \
     collision), %d timer fires, %d attacker moves, %d phase transitions, %d \
     node failures, %d revivals, %d link changes@]"
    c.runs c.broadcasts c.deliveries
    (c.drops_link + c.drops_collision)
    c.drops_link c.drops_collision c.timer_fires c.attacker_moves
    c.phase_transitions c.node_failures c.node_revivals c.link_changes
