(** Radio link models.

    The paper evaluates over TOSSIM with an ideal communication model and the
    casino-lab noise file.  We provide the ideal regime plus two parametric
    substitutes (DESIGN.md §2): i.i.d. loss, and an SNR model with
    log-distance path loss and a Gaussian noise floor sampled per reception —
    the same knob the casino-lab trace turns, without the proprietary trace
    file. *)

type t =
  | Ideal  (** every transmission within range is received *)
  | Lossy of float  (** independent per-reception loss probability *)
  | Gaussian_noise of {
      tx_power_dbm : float;  (** transmit power (typ. 0 dBm for CC2420) *)
      path_loss_exponent : float;  (** typ. 2.0 free space … 4.0 indoor *)
      reference_loss_dbm : float;  (** path loss at 1 m (typ. 40 dB) *)
      noise_mean_dbm : float;  (** noise floor mean (typ. -105 dBm) *)
      noise_std_dbm : float;  (** noise floor std; casino-lab is harsh *)
      snr_threshold_db : float;  (** decode threshold (typ. 4 dB) *)
    }

val default_gaussian : t
(** CC2420-flavoured defaults: 0 dBm TX, exponent 2.5, 40 dB reference loss,
    −105 dBm mean noise, 5 dB noise std, 4 dB threshold.  At the paper's
    4.5 m spacing this gives near-perfect 1-hop links with occasional
    noise-induced losses. *)

val delivered : t -> Slpdas_util.Rng.t -> distance_m:float -> bool
(** [delivered model rng ~distance_m] samples whether one reception at the
    given distance succeeds. *)

(** A link model factored for per-edge precomputation.  [Static] decisions
    consume no randomness (matching {!delivered}, whose degenerate [Lossy]
    cases draw nothing); a [Bernoulli] decision is one draw; an [Snr]
    decision is one Gaussian noise sample compared against the
    distance-determined receive power, which [rx_power_dbm] computes with
    exactly the float expression {!delivered} uses — cache it per edge and
    the sampled verdicts are bit-identical. *)
type prepared =
  | Static of bool  (** delivered / dropped, no RNG draw *)
  | Bernoulli of float  (** loss probability, strictly inside (0, 1) *)
  | Snr of {
      noise_mean_dbm : float;
      noise_std_dbm : float;
      snr_threshold_db : float;
      rx_power_dbm : distance_m:float -> float;
    }

val prepare : t -> prepared
(** [prepare model] is the decision procedure of [model], factored so the
    distance-dependent part can be evaluated once per edge. *)

val expected_delivery : t -> distance_m:float -> samples:int -> Slpdas_util.Rng.t -> float
(** Monte-Carlo estimate of the delivery probability; for calibration tests
    and documentation. *)

val pp : Format.formatter -> t -> unit
