(** Spatial sharding: run independent regions of a deployment in parallel.

    A {!plan} partitions a topology's nodes into a [cells_x × cells_y] grid
    of spatial cells by node position and materialises each cell as an
    induced sub-deployment (local dense ids, intra-cell radio links).  Radio
    links crossing a cell border are {e cut} — cells are radio-isolated by
    construction — so a sharded run models independent regions, each hosted
    by its own engine, fanned out over the domain pool.

    Determinism contract: cells are enumerated in a fixed (row-major) order,
    each cell's RNG is split off the master seed {e before} any work is
    fanned out, and [Pool.map] is order-preserving — so every observable
    (per-cell counters, their input-order merge, any JSON rendering) is
    byte-identical whatever the domain count.  Additionally, a single-cell
    plan is {e exactly} an unsharded engine run: same node numbering, same
    graph, same RNG stream — the engine-equivalence suite uses this to keep
    sharded runs under the Fast/Reference differential oracle, and uses
    cell-disjoint topologies to oracle the multi-cell merge. *)

type cell = {
  id : int;  (** index into {!plan.cells}; row-major over the cell grid *)
  nodes : int array;  (** member nodes as {e global} ids, ascending *)
  topology : Slpdas_wsn.Topology.t;
      (** induced sub-deployment over local ids [0 .. Array.length nodes - 1];
          local id [i] is global node [nodes.(i)] *)
}

type plan = {
  base : Slpdas_wsn.Topology.t;
  cells_x : int;
  cells_y : int;
  cells : cell array;  (** row-major; empty cells are dropped *)
  cut_edges : int;  (** radio links crossing a cell border, dropped *)
}

val plan : cells_x:int -> cells_y:int -> Slpdas_wsn.Topology.t -> plan
(** [plan ~cells_x ~cells_y topology] bins nodes into [cells_x × cells_y]
    equal spatial cells over the bounding box of the node positions and
    builds each cell's induced sub-topology via the CSR bulk path (O(n + m)
    total).  Within a cell, nodes keep their relative (ascending global id)
    order, so local adjacency stays sorted.  A cell containing the base
    source/sink keeps it; otherwise the cell's source is its first node and
    its sink the node closest to the cell's centroid (ties to the lower id).
    @raise Invalid_argument if [cells_x < 1] or [cells_y < 1]. *)

val run :
  ?domains:int ->
  ?impl:Engine.impl ->
  ?batch_cutover:int ->
  ?airtime:float ->
  plan ->
  link:Link_model.t ->
  seed:int ->
  program:(cell:cell -> self:int -> ('s, 'm) Slpdas_gcn.program) ->
  until:float ->
  Event.counters array * Event.counters
(** [run plan ~link ~seed ~program ~until] creates one engine per cell
    ([program ~cell ~self] with {e local} [self]), runs each to [until] on
    the domain pool, and returns the per-cell counters (cell order) plus
    their input-order merge.  Per-cell RNGs are split off [Rng.create seed]
    in cell order before fan-out, so results are independent of [domains].
    [domains] defaults to the pool's recommended size. *)

val counters_json : Event.counters array -> Event.counters -> string
(** Canonical JSON rendering of a sharded run's observables — the merged
    counters plus each cell's — used by [make scale-smoke] to byte-compare
    multi-domain against single-domain runs. *)
