(** Spatial sharding: run regions of a deployment in parallel.

    A {!plan} partitions a topology's nodes into a [cells_x × cells_y] grid
    of spatial cells by node position and materialises each cell as an
    induced sub-deployment (local dense ids, intra-cell radio links).  Radio
    links crossing a cell border are recorded as {e boundary ports}: each
    cell keeps, per node, the cut neighbours' global ids and their positions
    inside the node's full global adjacency row.

    Two execution modes share the plan:

    {ul
    {- {!run} — the original radio-isolated mode: cut links are ignored and
       each cell runs as an independent deployment.  Fast, but cross-cell
       phenomena are absent.}
    {- {!run_coupled} — cells stay radio-coupled over the cut links and run
       as a conservative parallel discrete-event simulation: bounded
       lookahead windows of width {!Engine.propagation_delay} (the uniform
       link latency, hence the classic null-message-free conservative
       horizon), with boundary deliveries exchanged at window barriers
       through per-cell-pair deterministic mailboxes ({!Mailbox}).}}

    Determinism contract of the coupled mode: a coupled run is
    {e byte-identical} — counters, per-node states, event streams, capture
    outcomes, JSON — to the unsharded sequential engine built by
    {!sequential_engine} over the base deployment, at any cell count and any
    domain count.  The mechanism is content-based event ordering (stable
    [(time, source, per-source counter)] keys instead of push order) plus
    per-node RNG lanes split off the master seed in global node order, so
    neither event interleaving nor draw sequences depend on the
    decomposition; [test_engine_equiv] oracles the equivalence
    differentially.  Limits: airtime interference is rejected under coupling
    (cross-boundary jamming has zero latency, so no positive lookahead
    exists), and fault-layer {e link overrides} must not target cut edges
    (crash/revive and the global loss floor are fully supported). *)

type cell = {
  id : int;  (** index into {!plan.cells}; row-major over the cell grid *)
  nodes : int array;  (** member nodes as {e global} ids, ascending *)
  topology : Slpdas_wsn.Topology.t;
      (** induced sub-deployment over local ids [0 .. Array.length nodes - 1];
          local id [i] is global node [nodes.(i)] *)
  ports_off : int array;
      (** CSR offsets (length [n_local + 1]) into the flat port rows: node
          [v]'s cut edges are ports [ports_off.(v) .. ports_off.(v+1) - 1] *)
  ports_pos : int array;
      (** position of the cut neighbour inside the node's {e full global}
          adjacency row, so local rows and ports merge back into global
          row order *)
  ports_target : int array;  (** cut neighbour's global id *)
  boundary_nodes : int;  (** member nodes with at least one cut edge *)
}

type plan = {
  base : Slpdas_wsn.Topology.t;
  cells_x : int;
  cells_y : int;
  cells : cell array;  (** row-major; empty cells are dropped *)
  cut_arcs : int;
      (** directed arcs crossing a cell border (each radio link crossing a
          border contributes two) *)
  cut_links : int;  (** radio links crossing a cell border *)
  cut_edges : int;
      (** deprecated alias of [cut_links], kept for existing callers *)
  cell_of_node : int array;
      (** global node id -> index into [cells] of its hosting cell *)
  local_index : int array;  (** global node id -> local id within its cell *)
}

val plan : cells_x:int -> cells_y:int -> Slpdas_wsn.Topology.t -> plan
(** [plan ~cells_x ~cells_y topology] bins nodes into [cells_x × cells_y]
    equal spatial cells over the bounding box of the node positions and
    builds each cell's induced sub-topology and boundary ports via the CSR
    bulk path (O(n + m) total).  Within a cell, nodes keep their relative
    (ascending global id) order, so local adjacency stays sorted.  A cell
    containing the base source/sink keeps it; otherwise the cell's source is
    its first node and its sink the node closest to the cell's centroid
    (ties to the lower id).
    @raise Invalid_argument if [cells_x < 1] or [cells_y < 1]. *)

val boundary_nodes : plan -> int
(** Total nodes with at least one cut edge, over all cells. *)

val run :
  ?domains:int ->
  ?impl:Engine.impl ->
  ?batch_cutover:int ->
  ?airtime:float ->
  plan ->
  link:Link_model.t ->
  seed:int ->
  program:(cell:cell -> self:int -> ('s, 'm) Slpdas_gcn.program) ->
  until:float ->
  Event.counters array * Event.counters
(** [run plan ~link ~seed ~program ~until] creates one engine per cell
    ([program ~cell ~self] with {e local} [self]), runs each to [until] on
    the domain pool {e ignoring cut links}, and returns the per-cell
    counters (cell order) plus their input-order merge.  Per-cell RNGs are
    split off [Rng.create seed] in cell order before fan-out, so results are
    independent of [domains].  [domains] defaults to the pool's recommended
    size. *)

val counters_json : Event.counters array -> Event.counters -> string
(** Canonical JSON rendering of a sharded run's observables — the merged
    counters plus each cell's — used by [make scale-smoke] to byte-compare
    multi-domain against single-domain runs. *)

val sequential_engine :
  ?impl:Engine.impl ->
  topology:Slpdas_wsn.Topology.t ->
  link:Link_model.t ->
  seed:int ->
  program:(self:int -> ('s, 'm) Slpdas_gcn.program) ->
  unit ->
  ('s, 'm) Engine.t
(** The unsharded sequential reference for coupled runs: a single engine
    over the whole deployment with the identity coupling (stable event
    ordering, one RNG lane per node split off [Rng.create seed] in node
    order, no ports).  Drive it with {!Engine.run_until}; a
    {!run_coupled} of the same [(topology, link, seed, program, until)] is
    byte-identical to it whatever the cell and domain counts. *)

val run_coupled :
  ?domains:int ->
  ?impl:Engine.impl ->
  ?arm:(cell:cell -> ('s, 'm) Engine.t -> unit) ->
  ?monitor:(cell:cell -> ('s, 'm) Engine.t -> unit) ->
  ?inspect:(cell:cell -> ('s, 'm) Engine.t -> unit) ->
  plan ->
  link:Link_model.t ->
  seed:int ->
  program:(self:int -> ('s, 'm) Slpdas_gcn.program) ->
  until:float ->
  Event.counters array * Event.counters
(** [run_coupled plan ~link ~seed ~program ~until] runs the whole deployment
    radio-coupled: one engine per cell (programs receive {e global} selves
    and see global ids in triggers and events), stepped over the domain pool
    in conservative lookahead windows.  Each round, all cells run the window
    [\[t, t + propagation_delay)] anchored at the globally earliest pending
    event, then boundary deliveries are exchanged at the barrier; windows
    repeat until every pending event lies beyond [until].

    [monitor] is called per cell before [arm] (subscribe observers there);
    [arm] may schedule harness callbacks and faults ({e local} node ids —
    use [plan.cell_of_node]/[plan.local_index] to address a global node, and
    never set a link override on a cut edge); [inspect] runs after the final
    barrier, in cell order, for state extraction.  Returns per-cell counters
    (cell order) and their input-order merge.  Results are independent of
    [domains]. *)
