type entry = { time : float; sender : int; label : string }

type t = {
  capacity : int;
  entries : entry Queue.t;
  mutable dropped : int;
}

let attach ?(capacity = 10_000) engine ~describe =
  if capacity <= 0 then invalid_arg "Trace.attach: capacity must be positive";
  let t = { capacity; entries = Queue.create (); dropped = 0 } in
  Engine.subscribe engine (function
    | Event.Broadcast { time; sender; msg } ->
      Queue.add { time; sender; label = describe msg } t.entries;
      if Queue.length t.entries > t.capacity then begin
        ignore (Queue.pop t.entries);
        t.dropped <- t.dropped + 1
      end
    | _ -> ());
  t

let entries t = List.of_seq (Queue.to_seq t.entries)

let length t = Queue.length t.entries

let dropped t = t.dropped

(* Filter the queue's sequence directly: no intermediate list of the whole
   log is built, only the selected window. *)
let between t ~since ~until =
  List.of_seq
    (Seq.filter
       (fun e -> e.time >= since && e.time < until)
       (Queue.to_seq t.entries))

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Queue.iter
    (fun e ->
      Format.fprintf ppf "%10.3f  node %-4d %s@ " e.time e.sender e.label)
    t.entries;
  if t.dropped > 0 then Format.fprintf ppf "(%d earlier entries dropped)@ " t.dropped;
  Format.fprintf ppf "@]"
