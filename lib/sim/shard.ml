module Graph = Slpdas_wsn.Graph
module Topology = Slpdas_wsn.Topology

type cell = {
  id : int;
  nodes : int array;
  topology : Topology.t;
  ports_off : int array;
  ports_pos : int array;
  ports_target : int array;
  boundary_nodes : int;
}

type plan = {
  base : Topology.t;
  cells_x : int;
  cells_y : int;
  cells : cell array;
  cut_arcs : int;
  cut_links : int;
  cut_edges : int;
  cell_of_node : int array;
  local_index : int array;
}

let plan ~cells_x ~cells_y (base : Topology.t) =
  if cells_x < 1 || cells_y < 1 then
    invalid_arg "Shard.plan: cell grid must be at least 1x1";
  let g = base.Topology.graph in
  let n = Graph.n g in
  let positions = base.Topology.positions in
  (* Bounding box of the deployment; a degenerate axis puts everything in
     cell 0 of that axis. *)
  let min_x = ref infinity and max_x = ref neg_infinity in
  let min_y = ref infinity and max_y = ref neg_infinity in
  Array.iter
    (fun (x, y) ->
      if x < !min_x then min_x := x;
      if x > !max_x then max_x := x;
      if y < !min_y then min_y := y;
      if y > !max_y then max_y := y)
    positions;
  let axis ~cells ~lo ~hi coord =
    let span = hi -. lo in
    if span <= 0.0 then 0
    else
      min (cells - 1)
        (int_of_float (float_of_int cells *. ((coord -. lo) /. span)))
  in
  let bin_of_node = Array.make (max n 1) 0 in
  for v = 0 to n - 1 do
    let x, y = positions.(v) in
    let cx = axis ~cells:cells_x ~lo:!min_x ~hi:!max_x x in
    let cy = axis ~cells:cells_y ~lo:!min_y ~hi:!max_y y in
    bin_of_node.(v) <- (cy * cells_x) + cx
  done;
  let num_bins = cells_x * cells_y in
  (* Member lists per cell, ascending global id (one ascending sweep). *)
  let counts = Array.make num_bins 0 in
  for v = 0 to n - 1 do
    counts.(bin_of_node.(v)) <- counts.(bin_of_node.(v)) + 1
  done;
  let members = Array.init num_bins (fun c -> Array.make counts.(c) 0) in
  let fill = Array.make num_bins 0 in
  for v = 0 to n - 1 do
    let c = bin_of_node.(v) in
    members.(c).(fill.(c)) <- v;
    fill.(c) <- fill.(c) + 1
  done;
  (* Global -> local index within its own cell.  Ascending fill order makes
     the mapping monotone per cell, so filtered adjacency rows stay
     sorted. *)
  let local_of = Array.make (max n 1) 0 in
  Array.iter
    (fun nodes -> Array.iteri (fun i v -> local_of.(v) <- i) nodes)
    members;
  let cut_arcs = ref 0 in
  let cut_links = ref 0 in
  let build_cell next_id nodes =
    let cn = Array.length nodes in
    let offsets = Array.make (cn + 1) 0 in
    let ports_off = Array.make (cn + 1) 0 in
    Array.iteri
      (fun i v ->
        let deg = ref 0 and cut = ref 0 in
        Array.iter
          (fun w ->
            if bin_of_node.(w) = bin_of_node.(v) then incr deg
            else begin
              incr cut;
              incr cut_arcs;
              if v < w then incr cut_links
            end)
          (Graph.neighbours g v);
        offsets.(i + 1) <- offsets.(i) + !deg;
        ports_off.(i + 1) <- ports_off.(i) + !cut)
      nodes;
    let targets = Array.make offsets.(cn) 0 in
    let ports_pos = Array.make ports_off.(cn) 0 in
    let ports_target = Array.make ports_off.(cn) 0 in
    let pos = ref 0 and ppos = ref 0 in
    let boundary_nodes = ref 0 in
    Array.iter
      (fun v ->
        let before = !ppos in
        (* [j] indexes v's full global adjacency row; cut neighbours keep
           that position so a coupled engine can interleave local rows and
           ports back into the exact global row order. *)
        Array.iteri
          (fun j w ->
            if bin_of_node.(w) = bin_of_node.(v) then begin
              targets.(!pos) <- local_of.(w);
              incr pos
            end
            else begin
              ports_pos.(!ppos) <- j;
              ports_target.(!ppos) <- w;
              incr ppos
            end)
          (Graph.neighbours g v);
        if !ppos > before then incr boundary_nodes)
      nodes;
    let graph = Graph.of_csr ~n:cn ~offsets ~targets in
    let cell_positions = Array.map (fun v -> positions.(v)) nodes in
    (* Source/sink of the sub-deployment: keep the base's when it lives
       here; otherwise first node as source, centroid-closest as sink. *)
    let local_of_global v = local_of.(v) in
    let source =
      if
        base.Topology.source < n
        && bin_of_node.(base.Topology.source) = bin_of_node.(nodes.(0))
      then local_of_global base.Topology.source
      else 0
    in
    let sink =
      if
        base.Topology.sink < n
        && bin_of_node.(base.Topology.sink) = bin_of_node.(nodes.(0))
      then local_of_global base.Topology.sink
      else begin
        let cx = ref 0.0 and cy = ref 0.0 in
        Array.iter
          (fun (x, y) ->
            cx := !cx +. x;
            cy := !cy +. y)
          cell_positions;
        let cn_f = float_of_int cn in
        let cx = !cx /. cn_f and cy = !cy /. cn_f in
        let best = ref 0 and best_d = ref infinity in
        Array.iteri
          (fun i (x, y) ->
            let d = ((x -. cx) ** 2.0) +. ((y -. cy) ** 2.0) in
            if d < !best_d then begin
              best := i;
              best_d := d
            end)
          cell_positions;
        !best
      end
    in
    {
      id = next_id;
      nodes;
      topology =
        {
          Topology.name = Printf.sprintf "%s/cell-%d" base.Topology.name next_id;
          graph;
          positions = cell_positions;
          source;
          sink;
        };
      ports_off;
      ports_pos;
      ports_target;
      boundary_nodes = !boundary_nodes;
    }
  in
  let cells = ref [] in
  let compact = Array.make num_bins (-1) in
  let next_id = ref 0 in
  for c = 0 to num_bins - 1 do
    if counts.(c) > 0 then begin
      compact.(c) <- !next_id;
      cells := build_cell !next_id members.(c) :: !cells;
      incr next_id
    end
  done;
  let cell_of_node = Array.make (max n 1) 0 in
  for v = 0 to n - 1 do
    cell_of_node.(v) <- compact.(bin_of_node.(v))
  done;
  {
    base;
    cells_x;
    cells_y;
    cells = Array.of_list (List.rev !cells);
    cut_arcs = !cut_arcs;
    cut_links = !cut_links;
    cut_edges = !cut_links;
    cell_of_node;
    local_index = local_of;
  }

let boundary_nodes plan =
  Array.fold_left (fun acc c -> acc + c.boundary_nodes) 0 plan.cells

let run ?domains ?(impl = Engine.Fast) ?batch_cutover ?airtime plan ~link ~seed
    ~program ~until =
  (* Per-cell RNG streams are split off in cell order, before any fan-out,
     so they do not depend on the pool size or on scheduling. *)
  let master = Slpdas_util.Rng.create seed in
  let jobs =
    Array.to_list
      (Array.map (fun cell -> (cell, Slpdas_util.Rng.split master)) plan.cells)
  in
  let per_cell =
    Slpdas_util.Pool.with_pool ?domains (fun pool ->
        Slpdas_util.Pool.map pool
          (fun (cell, rng) ->
            let e =
              Engine.create ~impl ?batch_cutover ?airtime
                ~topology:cell.topology ~link ~rng
                ~program:(fun ~self -> program ~cell ~self)
                ()
            in
            Engine.run_until e until;
            Engine.counters e)
          jobs)
  in
  (Array.of_list per_cell, Event.merge_all per_cell)

let counters_json per_cell merged =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"merged\": ";
  Buffer.add_string buf (Event.to_json merged);
  Buffer.add_string buf ", \"cells\": [";
  Array.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Event.to_json c))
    per_cell;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Coupled runs: conservative lookahead windows over cut edges        *)
(* ------------------------------------------------------------------ *)

(* Per-node RNG lanes, split off the master seed in global node order.  The
   same construction serves the coupled run and its sequential twin, so
   node [v]'s draw stream is identical in both. *)
let lanes_of_seed ~n seed =
  let master = Slpdas_util.Rng.create seed in
  Array.init n (fun _ -> Slpdas_util.Rng.split master)

(* The coupled engine never draws from the engine-level rng (every draw
   comes from a lane); the argument exists only to satisfy [create]. *)
let unused_rng () = Slpdas_util.Rng.create 0

let sequential_engine ?(impl = Engine.Fast) ~topology ~link ~seed ~program () =
  let n = Graph.n topology.Topology.graph in
  let coupling =
    {
      Engine.global_ids = Array.init n (fun v -> v);
      lanes = lanes_of_seed ~n seed;
      ports_off = Array.make (n + 1) 0;
      ports_pos = [||];
      ports_target = [||];
      ports_x = [||];
      ports_y = [||];
      send = (fun ~at:_ ~src:_ ~sseq:_ ~target:_ ~msg:_ -> ());
    }
  in
  Engine.create ~impl ~coupling ~topology ~link ~rng:(unused_rng ()) ~program ()

let run_coupled ?domains ?(impl = Engine.Fast) ?arm ?monitor ?inspect plan
    ~link ~seed ~program ~until =
  let n = Graph.n plan.base.Topology.graph in
  let positions = plan.base.Topology.positions in
  let lanes_all = lanes_of_seed ~n seed in
  let nc = Array.length plan.cells in
  (* One mailbox per directed cell pair with at least one cut arc, created
     up front so window workers never allocate shared structure. *)
  let boxes = Array.make (nc * nc) None in
  Array.iter
    (fun cell ->
      Array.iter
        (fun target ->
          let k = (cell.id * nc) + plan.cell_of_node.(target) in
          match boxes.(k) with
          | Some _ -> ()
          | None -> boxes.(k) <- Some (Mailbox.create ()))
        cell.ports_target)
    plan.cells;
  let send_of cell ~at ~src ~sseq ~target ~msg =
    match boxes.((cell.id * nc) + plan.cell_of_node.(target)) with
    | Some box ->
      Mailbox.push box ~at ~src ~sseq ~node:plan.local_index.(target) ~msg
    | None -> assert false
  in
  let engines =
    Array.map
      (fun cell ->
        let lanes = Array.map (fun v -> lanes_all.(v)) cell.nodes in
        let np = Array.length cell.ports_target in
        let ports_x = Array.make np 0.0 and ports_y = Array.make np 0.0 in
        Array.iteri
          (fun i w ->
            let x, y = positions.(w) in
            ports_x.(i) <- x;
            ports_y.(i) <- y)
          cell.ports_target;
        Engine.create ~impl
          ~coupling:
            {
              Engine.global_ids = cell.nodes;
              lanes;
              ports_off = cell.ports_off;
              ports_pos = cell.ports_pos;
              ports_target = cell.ports_target;
              ports_x;
              ports_y;
              send = send_of cell;
            }
          ~topology:cell.topology ~link ~rng:(unused_rng ()) ~program ())
      plan.cells
  in
  (match monitor with
  | Some f -> Array.iteri (fun i e -> f ~cell:plan.cells.(i) e) engines
  | None -> ());
  (match arm with
  | Some f -> Array.iteri (fun i e -> f ~cell:plan.cells.(i) e) engines
  | None -> ());
  (* Barrier exchange: ship every buffered boundary delivery into its
     destination cell's queue.  Deterministic (cell order, then
     (time, src, sseq) within each box), though the stable heap order makes
     ingestion order immaterial anyway.  The (engine, box) pairs are
     flattened once, dst-major then src order, so the per-window sweep
     touches only real cut-edge pairs instead of scanning the nc*nc grid
     (the ingest closure is hoisted with them — the sweep runs thousands
     of times per simulated second and must not allocate). *)
  let drain_pairs =
    let acc = ref [] in
    for dst = nc - 1 downto 0 do
      let e = engines.(dst) in
      let ingest ~at ~src ~sseq ~node ~msg =
        Engine.ingest_delivery e ~at ~src ~sseq ~node ~msg
      in
      for src = nc - 1 downto 0 do
        match boxes.((src * nc) + dst) with
        | Some box -> acc := (box, ingest) :: !acc
        | None -> ()
      done
    done;
    Array.of_list !acc
  in
  let drain_boxes () =
    Array.iter (fun (box, ingest) -> Mailbox.drain box ingest) drain_pairs
  in
  (* Boot effects broadcast at time 0; their boundary deliveries must be in
     place before the first window. *)
  drain_boxes ();
  let window = Engine.propagation_delay in
  Slpdas_util.Pool.with_pool ?domains (fun pool ->
      let stop = Atomic.make 0.0 in
      (* The round runs over a per-window {e active prefix} of [slots]: only
         engines whose next event falls inside the window.  A wavefront only
         crosses a handful of cells at a time, so most windows most cells
         have nothing to do — skipping them is exact ([run_window] on an
         idle engine is a single heap peek) and keeps chunk claims, and on
         oversubscribed hosts scheduler churn, proportional to real work. *)
      let slots = Array.init nc (fun i -> i) in
      let nexts = Array.make nc infinity in
      let round =
        Slpdas_util.Pool.rounds pool ~chunk:1
          (fun i ->
            Engine.run_window engines.(i) ~stop_before:(Atomic.get stop)
              ~deadline:until)
          slots
      in
      let next_time () =
        let acc = ref infinity in
        Array.iteri
          (fun i e ->
            let at =
              match Engine.next_event_time e with
              | Some at -> at
              | None -> infinity
            in
            nexts.(i) <- at;
            if at < !acc then acc := at)
          engines;
        !acc
      in
      let rec loop () =
        let t_next = next_time () in
        if t_next <= until then begin
          (* Conservative horizon: nothing processed in
             [t_next, t_next + window) can influence another cell before
             t_next + window, because boundary deliveries arrive exactly one
             propagation delay after their broadcast. *)
          let horizon = t_next +. window in
          Atomic.set stop horizon;
          let na = ref 0 in
          for i = 0 to nc - 1 do
            if nexts.(i) < horizon then begin
              slots.(!na) <- i;
              incr na
            end
          done;
          if !na = 1 then
            (* A lone active cell gains nothing from the pool; run it on the
               coordinator and skip the worker wake-up entirely. *)
            Engine.run_window engines.(slots.(0)) ~stop_before:horizon
              ~deadline:until
          else Slpdas_util.Pool.run_round_prefix round !na;
          drain_boxes ();
          loop ()
        end
      in
      loop ());
  Array.iter (fun e -> Engine.advance_to e until) engines;
  (match inspect with
  | Some f -> Array.iteri (fun i e -> f ~cell:plan.cells.(i) e) engines
  | None -> ());
  let per_cell = Array.map Engine.counters engines in
  let merged = Event.merge_all (Array.to_list per_cell) in
  (* The merge sums the per-cell [runs] fields, but a coupled execution is
     one run of one deployment — normalise so the merged record (and its
     JSON) is byte-identical to the sequential engine's. *)
  let merged =
    if Array.length per_cell > 0 then { merged with Event.runs = 1 }
    else merged
  in
  (per_cell, merged)
