module Graph = Slpdas_wsn.Graph
module Topology = Slpdas_wsn.Topology

type cell = { id : int; nodes : int array; topology : Topology.t }

type plan = {
  base : Topology.t;
  cells_x : int;
  cells_y : int;
  cells : cell array;
  cut_edges : int;
}

let plan ~cells_x ~cells_y (base : Topology.t) =
  if cells_x < 1 || cells_y < 1 then
    invalid_arg "Shard.plan: cell grid must be at least 1x1";
  let g = base.Topology.graph in
  let n = Graph.n g in
  let positions = base.Topology.positions in
  (* Bounding box of the deployment; a degenerate axis puts everything in
     cell 0 of that axis. *)
  let min_x = ref infinity and max_x = ref neg_infinity in
  let min_y = ref infinity and max_y = ref neg_infinity in
  Array.iter
    (fun (x, y) ->
      if x < !min_x then min_x := x;
      if x > !max_x then max_x := x;
      if y < !min_y then min_y := y;
      if y > !max_y then max_y := y)
    positions;
  let axis ~cells ~lo ~hi coord =
    let span = hi -. lo in
    if span <= 0.0 then 0
    else
      min (cells - 1)
        (int_of_float (float_of_int cells *. ((coord -. lo) /. span)))
  in
  let cell_of_node = Array.make (max n 1) 0 in
  for v = 0 to n - 1 do
    let x, y = positions.(v) in
    let cx = axis ~cells:cells_x ~lo:!min_x ~hi:!max_x x in
    let cy = axis ~cells:cells_y ~lo:!min_y ~hi:!max_y y in
    cell_of_node.(v) <- (cy * cells_x) + cx
  done;
  let num_cells = cells_x * cells_y in
  (* Member lists per cell, ascending global id (one ascending sweep). *)
  let counts = Array.make num_cells 0 in
  for v = 0 to n - 1 do
    counts.(cell_of_node.(v)) <- counts.(cell_of_node.(v)) + 1
  done;
  let members = Array.init num_cells (fun c -> Array.make counts.(c) 0) in
  let fill = Array.make num_cells 0 in
  for v = 0 to n - 1 do
    let c = cell_of_node.(v) in
    members.(c).(fill.(c)) <- v;
    fill.(c) <- fill.(c) + 1
  done;
  (* Global -> local index within its own cell.  Ascending fill order makes
     the mapping monotone per cell, so filtered adjacency rows stay
     sorted. *)
  let local_of = Array.make (max n 1) 0 in
  Array.iter
    (fun nodes -> Array.iteri (fun i v -> local_of.(v) <- i) nodes)
    members;
  let cut_edges = ref 0 in
  let build_cell next_id nodes =
    let cn = Array.length nodes in
    let offsets = Array.make (cn + 1) 0 in
    Array.iteri
      (fun i v ->
        let deg = ref 0 in
        Array.iter
          (fun w ->
            if cell_of_node.(w) = cell_of_node.(v) then incr deg
            else incr cut_edges)
          (Graph.neighbours g v);
        offsets.(i + 1) <- offsets.(i) + !deg)
      nodes;
    let targets = Array.make offsets.(cn) 0 in
    let pos = ref 0 in
    Array.iter
      (fun v ->
        Array.iter
          (fun w ->
            if cell_of_node.(w) = cell_of_node.(v) then begin
              targets.(!pos) <- local_of.(w);
              incr pos
            end)
          (Graph.neighbours g v))
      nodes;
    let graph = Graph.of_csr ~n:cn ~offsets ~targets in
    let cell_positions = Array.map (fun v -> positions.(v)) nodes in
    (* Source/sink of the sub-deployment: keep the base's when it lives
       here; otherwise first node as source, centroid-closest as sink. *)
    let local_of_global v = local_of.(v) in
    let source =
      if
        base.Topology.source < n
        && cell_of_node.(base.Topology.source) = cell_of_node.(nodes.(0))
      then local_of_global base.Topology.source
      else 0
    in
    let sink =
      if
        base.Topology.sink < n
        && cell_of_node.(base.Topology.sink) = cell_of_node.(nodes.(0))
      then local_of_global base.Topology.sink
      else begin
        let cx = ref 0.0 and cy = ref 0.0 in
        Array.iter
          (fun (x, y) ->
            cx := !cx +. x;
            cy := !cy +. y)
          cell_positions;
        let cn_f = float_of_int cn in
        let cx = !cx /. cn_f and cy = !cy /. cn_f in
        let best = ref 0 and best_d = ref infinity in
        Array.iteri
          (fun i (x, y) ->
            let d = ((x -. cx) ** 2.0) +. ((y -. cy) ** 2.0) in
            if d < !best_d then begin
              best := i;
              best_d := d
            end)
          cell_positions;
        !best
      end
    in
    {
      id = next_id;
      nodes;
      topology =
        {
          Topology.name = Printf.sprintf "%s/cell-%d" base.Topology.name next_id;
          graph;
          positions = cell_positions;
          source;
          sink;
        };
    }
  in
  let cells = ref [] in
  let next_id = ref 0 in
  for c = 0 to num_cells - 1 do
    if counts.(c) > 0 then begin
      cells := build_cell !next_id members.(c) :: !cells;
      incr next_id
    end
  done;
  (* Each cut link was seen from both endpoints. *)
  {
    base;
    cells_x;
    cells_y;
    cells = Array.of_list (List.rev !cells);
    cut_edges = !cut_edges / 2;
  }

let run ?domains ?(impl = Engine.Fast) ?batch_cutover ?airtime plan ~link ~seed
    ~program ~until =
  (* Per-cell RNG streams are split off in cell order, before any fan-out,
     so they do not depend on the pool size or on scheduling. *)
  let master = Slpdas_util.Rng.create seed in
  let jobs =
    Array.to_list
      (Array.map (fun cell -> (cell, Slpdas_util.Rng.split master)) plan.cells)
  in
  let per_cell =
    Slpdas_util.Pool.with_pool ?domains (fun pool ->
        Slpdas_util.Pool.map pool
          (fun (cell, rng) ->
            let e =
              Engine.create ~impl ?batch_cutover ?airtime
                ~topology:cell.topology ~link ~rng
                ~program:(fun ~self -> program ~cell ~self)
                ()
            in
            Engine.run_until e until;
            Engine.counters e)
          jobs)
  in
  (Array.of_list per_cell, Event.merge_all per_cell)

let counters_json per_cell merged =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"merged\": ";
  Buffer.add_string buf (Event.to_json merged);
  Buffer.add_string buf ", \"cells\": [";
  Array.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Event.to_json c))
    per_cell;
  Buffer.add_string buf "]}";
  Buffer.contents buf
