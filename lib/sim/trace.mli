(** Broadcast trace recording.

    {b Deprecated} in favour of the structured event bus: subscribe to the
    engine with {!Engine.subscribe} and match on [Event.Broadcast] (and any
    other event kinds you care about — deliveries, drops, timer fires,
    attacker moves) instead of recording a string-labelled broadcast log.
    This module remains as a convenience for bounded human-readable
    timelines and is itself implemented on the bus; it records broadcasts
    only and will not grow further. *)

type entry = {
  time : float;
  sender : int;
  label : string;  (** the message's description at transmission time *)
}

type t

val attach :
  ?capacity:int ->
  ('s, 'm) Engine.t ->
  describe:('m -> string) ->
  t
(** [attach engine ~describe] starts recording every broadcast.  At most
    [capacity] (default 10 000) entries are kept; older entries beyond the
    cap are dropped and counted. *)

val entries : t -> entry list
(** Recorded entries, oldest first. *)

val length : t -> int

val dropped : t -> int
(** Entries discarded because the capacity was exceeded. *)

val between : t -> since:float -> until:float -> entry list
(** Entries with [since <= time < until], oldest first. *)

val pp : Format.formatter -> t -> unit
(** One line per entry: [time sender label]. *)
