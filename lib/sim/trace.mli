(** Broadcast trace recording.

    Attaches to an engine's broadcast hook and keeps a bounded log of who
    transmitted what and when — the message-timeline view TOSSIM users get
    from its debug channels.  Used by the CLI's [simulate --trace] and by
    tests that assert on transmission timelines. *)

type entry = {
  time : float;
  sender : int;
  label : string;  (** the message's description at transmission time *)
}

type t

val attach :
  ?capacity:int ->
  ('s, 'm) Engine.t ->
  describe:('m -> string) ->
  t
(** [attach engine ~describe] starts recording every broadcast.  At most
    [capacity] (default 10 000) entries are kept; older entries beyond the
    cap are dropped and counted. *)

val entries : t -> entry list
(** Recorded entries, oldest first. *)

val length : t -> int

val dropped : t -> int
(** Entries discarded because the capacity was exceeded. *)

val between : t -> since:float -> until:float -> entry list
(** Entries with [since <= time < until], oldest first. *)

val pp : Format.formatter -> t -> unit
(** One line per entry: [time sender label]. *)
