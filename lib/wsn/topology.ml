type t = {
  name : string;
  graph : Graph.t;
  positions : (float * float) array;
  source : int;
  sink : int;
}

let grid_coords ~dim v = (v / dim, v mod dim)

let grid_node ~dim ~row ~col =
  if row < 0 || row >= dim || col < 0 || col >= dim then
    invalid_arg "Topology.grid_node: outside the grid";
  (row * dim) + col

let grid ?(spacing = 4.5) dim =
  if dim < 2 then invalid_arg "Topology.grid: dim must be >= 2";
  let n = dim * dim in
  let edges = ref [] in
  for r = 0 to dim - 1 do
    for c = 0 to dim - 1 do
      let v = grid_node ~dim ~row:r ~col:c in
      if c + 1 < dim then edges := (v, grid_node ~dim ~row:r ~col:(c + 1)) :: !edges;
      if r + 1 < dim then edges := (v, grid_node ~dim ~row:(r + 1) ~col:c) :: !edges
    done
  done;
  let graph = Graph.create ~n !edges in
  let positions =
    Array.init n (fun v ->
        let r, c = grid_coords ~dim v in
        (float_of_int c *. spacing, float_of_int r *. spacing))
  in
  let centre = (dim - 1) / 2 in
  {
    name = Printf.sprintf "grid-%dx%d" dim dim;
    graph;
    positions;
    source = 0;
    sink = grid_node ~dim ~row:centre ~col:centre;
  }

let grid8 ?(spacing = 4.5) dim =
  if dim < 2 then invalid_arg "Topology.grid8: dim must be >= 2";
  let base = grid ~spacing dim in
  let extra = ref [] in
  for r = 0 to dim - 2 do
    for c = 0 to dim - 1 do
      let v = grid_node ~dim ~row:r ~col:c in
      if c + 1 < dim then
        extra := (v, grid_node ~dim ~row:(r + 1) ~col:(c + 1)) :: !extra;
      if c > 0 then
        extra := (v, grid_node ~dim ~row:(r + 1) ~col:(c - 1)) :: !extra
    done
  done;
  {
    base with
    name = Printf.sprintf "grid8-%dx%d" dim dim;
    graph = Graph.create ~n:(dim * dim) (Graph.edges base.graph @ !extra);
  }

let torus ?(spacing = 4.5) dim =
  if dim < 3 then invalid_arg "Topology.torus: dim must be >= 3";
  let n = dim * dim in
  let edges = ref [] in
  for r = 0 to dim - 1 do
    for c = 0 to dim - 1 do
      let v = grid_node ~dim ~row:r ~col:c in
      edges := (v, grid_node ~dim ~row:r ~col:((c + 1) mod dim)) :: !edges;
      edges := (v, grid_node ~dim ~row:((r + 1) mod dim) ~col:c) :: !edges
    done
  done;
  let graph = Graph.create ~n !edges in
  let positions =
    Array.init n (fun v ->
        let r, c = grid_coords ~dim v in
        (float_of_int c *. spacing, float_of_int r *. spacing))
  in
  let centre = dim / 2 in
  {
    name = Printf.sprintf "torus-%dx%d" dim dim;
    graph;
    positions;
    source = 0;
    sink = grid_node ~dim ~row:centre ~col:centre;
  }

let line ?(spacing = 4.5) n =
  if n < 2 then invalid_arg "Topology.line: n must be >= 2";
  let edges = List.init (n - 1) (fun i -> (i, i + 1)) in
  {
    name = Printf.sprintf "line-%d" n;
    graph = Graph.create ~n edges;
    positions = Array.init n (fun i -> (float_of_int i *. spacing, 0.0));
    source = 0;
    sink = n - 1;
  }

let ring ?(spacing = 4.5) n =
  if n < 3 then invalid_arg "Topology.ring: n must be >= 3";
  let edges = List.init n (fun i -> (i, (i + 1) mod n)) in
  let radius = spacing *. float_of_int n /. (2.0 *. Float.pi) in
  let positions =
    Array.init n (fun i ->
        let angle = 2.0 *. Float.pi *. float_of_int i /. float_of_int n in
        (radius *. cos angle, radius *. sin angle))
  in
  {
    name = Printf.sprintf "ring-%d" n;
    graph = Graph.create ~n edges;
    positions;
    source = 0;
    sink = n / 2;
  }

let distance (x1, y1) (x2, y2) = sqrt (((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0))

let random_unit_disk rng ~n ~side ~range ~max_attempts =
  if n < 2 then invalid_arg "Topology.random_unit_disk: n must be >= 2";
  let attempt () =
    let positions =
      Array.init n (fun _ ->
          (Slpdas_util.Rng.float rng side, Slpdas_util.Rng.float rng side))
    in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if distance positions.(u) positions.(v) <= range then
          edges := (u, v) :: !edges
      done
    done;
    let graph = Graph.create ~n !edges in
    if Graph.is_connected graph then Some (graph, positions) else None
  in
  let rec try_place remaining =
    if remaining <= 0 then None
    else begin
      match attempt () with
      | Some placed -> Some placed
      | None -> try_place (remaining - 1)
    end
  in
  match try_place max_attempts with
  | None -> None
  | Some (graph, positions) ->
    let centre = (side /. 2.0, side /. 2.0) in
    let closest_to_centre = ref 0 in
    for v = 1 to n - 1 do
      if distance positions.(v) centre < distance positions.(!closest_to_centre) centre
      then closest_to_centre := v
    done;
    let sink = !closest_to_centre in
    let dist = Graph.bfs_distances graph sink in
    let source = ref (if sink = 0 then 1 else 0) in
    for v = 0 to n - 1 do
      if v <> sink && dist.(v) > dist.(!source) then source := v
    done;
    Some
      {
        name = Printf.sprintf "unit-disk-%d" n;
        graph;
        positions;
        source = !source;
        sink;
      }

let source_sink_distance t =
  match Graph.hop_distance t.graph t.source t.sink with
  | Some d -> d
  | None -> invalid_arg "Topology.source_sink_distance: disconnected"

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %a; source=%d sink=%d@]" t.name Graph.pp t.graph
    t.source t.sink
