type t = {
  name : string;
  graph : Graph.t;
  positions : (float * float) array;
  source : int;
  sink : int;
}

let grid_coords ~dim v = (v / dim, v mod dim)

(* Bulk-build a graph from a directed-arc enumerator in O(n + m): one pass
   counts degrees, one pass fills the CSR targets, then each (constant-size)
   row is insertion-sorted so the result matches [Graph.create]'s
   sorted-adjacency contract exactly.  [each emit] must call [emit u v] once
   per directed arc (i.e. twice per undirected edge). *)
let graph_of_arcs ~n each =
  let offsets = Array.make (n + 1) 0 in
  each (fun u _v -> offsets.(u + 1) <- offsets.(u + 1) + 1);
  for u = 1 to n do
    offsets.(u) <- offsets.(u) + offsets.(u - 1)
  done;
  let targets = Array.make offsets.(n) 0 in
  let fill = Array.copy offsets in
  each (fun u v ->
      targets.(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1);
  for u = 0 to n - 1 do
    let lo = offsets.(u) and hi = offsets.(u + 1) in
    for i = lo + 1 to hi - 1 do
      let x = targets.(i) in
      let j = ref i in
      while !j > lo && targets.(!j - 1) > x do
        targets.(!j) <- targets.(!j - 1);
        decr j
      done;
      targets.(!j) <- x
    done
  done;
  Graph.of_csr ~n ~offsets ~targets

let grid_positions ~dim ~spacing n =
  Array.init n (fun v ->
      let r, c = grid_coords ~dim v in
      (float_of_int c *. spacing, float_of_int r *. spacing))

let grid_node ~dim ~row ~col =
  if row < 0 || row >= dim || col < 0 || col >= dim then
    invalid_arg "Topology.grid_node: outside the grid";
  (row * dim) + col

let grid ?(spacing = 4.5) dim =
  if dim < 2 then invalid_arg "Topology.grid: dim must be >= 2";
  let n = dim * dim in
  (* Arcs emitted per node in ascending target order (up, left, right,
     down), so rows land pre-sorted. *)
  let graph =
    graph_of_arcs ~n (fun emit ->
        for r = 0 to dim - 1 do
          for c = 0 to dim - 1 do
            let v = (r * dim) + c in
            if r > 0 then emit v (v - dim);
            if c > 0 then emit v (v - 1);
            if c + 1 < dim then emit v (v + 1);
            if r + 1 < dim then emit v (v + dim)
          done
        done)
  in
  let positions = grid_positions ~dim ~spacing n in
  let centre = (dim - 1) / 2 in
  {
    name = Printf.sprintf "grid-%dx%d" dim dim;
    graph;
    positions;
    source = 0;
    sink = grid_node ~dim ~row:centre ~col:centre;
  }

let grid8 ?(spacing = 4.5) dim =
  if dim < 2 then invalid_arg "Topology.grid8: dim must be >= 2";
  let base = grid ~spacing dim in
  let n = dim * dim in
  let graph =
    graph_of_arcs ~n (fun emit ->
        for r = 0 to dim - 1 do
          for c = 0 to dim - 1 do
            let v = (r * dim) + c in
            if r > 0 && c > 0 then emit v (v - dim - 1);
            if r > 0 then emit v (v - dim);
            if r > 0 && c + 1 < dim then emit v (v - dim + 1);
            if c > 0 then emit v (v - 1);
            if c + 1 < dim then emit v (v + 1);
            if r + 1 < dim && c > 0 then emit v (v + dim - 1);
            if r + 1 < dim then emit v (v + dim);
            if r + 1 < dim && c + 1 < dim then emit v (v + dim + 1)
          done
        done)
  in
  { base with name = Printf.sprintf "grid8-%dx%d" dim dim; graph }

let torus ?(spacing = 4.5) dim =
  if dim < 3 then invalid_arg "Topology.torus: dim must be >= 3";
  let n = dim * dim in
  (* Wrap-around targets are not monotone in emission order; the CSR helper
     sorts each (4-element) row afterwards. *)
  let graph =
    graph_of_arcs ~n (fun emit ->
        for r = 0 to dim - 1 do
          for c = 0 to dim - 1 do
            let v = (r * dim) + c in
            emit v ((((r + dim - 1) mod dim) * dim) + c);
            emit v ((((r + 1) mod dim) * dim) + c);
            emit v ((r * dim) + ((c + dim - 1) mod dim));
            emit v ((r * dim) + ((c + 1) mod dim))
          done
        done)
  in
  let positions = grid_positions ~dim ~spacing n in
  let centre = dim / 2 in
  {
    name = Printf.sprintf "torus-%dx%d" dim dim;
    graph;
    positions;
    source = 0;
    sink = grid_node ~dim ~row:centre ~col:centre;
  }

let line ?(spacing = 4.5) n =
  if n < 2 then invalid_arg "Topology.line: n must be >= 2";
  let graph =
    graph_of_arcs ~n (fun emit ->
        for i = 0 to n - 1 do
          if i > 0 then emit i (i - 1);
          if i + 1 < n then emit i (i + 1)
        done)
  in
  {
    name = Printf.sprintf "line-%d" n;
    graph;
    positions = Array.init n (fun i -> (float_of_int i *. spacing, 0.0));
    source = 0;
    sink = n - 1;
  }

let ring ?(spacing = 4.5) n =
  if n < 3 then invalid_arg "Topology.ring: n must be >= 3";
  let graph =
    graph_of_arcs ~n (fun emit ->
        for i = 0 to n - 1 do
          emit i ((i + n - 1) mod n);
          emit i ((i + 1) mod n)
        done)
  in
  let radius = spacing *. float_of_int n /. (2.0 *. Float.pi) in
  let positions =
    Array.init n (fun i ->
        let angle = 2.0 *. Float.pi *. float_of_int i /. float_of_int n in
        (radius *. cos angle, radius *. sin angle))
  in
  {
    name = Printf.sprintf "ring-%d" n;
    graph;
    positions;
    source = 0;
    sink = n / 2;
  }

let distance (x1, y1) (x2, y2) = sqrt (((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0))

let random_unit_disk rng ~n ~side ~range ~max_attempts =
  if n < 2 then invalid_arg "Topology.random_unit_disk: n must be >= 2";
  let attempt () =
    let positions =
      Array.init n (fun _ ->
          (Slpdas_util.Rng.float rng side, Slpdas_util.Rng.float rng side))
    in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if distance positions.(u) positions.(v) <= range then
          edges := (u, v) :: !edges
      done
    done;
    let graph = Graph.create ~n !edges in
    if Graph.is_connected graph then Some (graph, positions) else None
  in
  let rec try_place remaining =
    if remaining <= 0 then None
    else begin
      match attempt () with
      | Some placed -> Some placed
      | None -> try_place (remaining - 1)
    end
  in
  match try_place max_attempts with
  | None -> None
  | Some (graph, positions) ->
    let centre = (side /. 2.0, side /. 2.0) in
    let closest_to_centre = ref 0 in
    for v = 1 to n - 1 do
      if distance positions.(v) centre < distance positions.(!closest_to_centre) centre
      then closest_to_centre := v
    done;
    let sink = !closest_to_centre in
    let dist = Graph.bfs_distances graph sink in
    let source = ref (if sink = 0 then 1 else 0) in
    for v = 0 to n - 1 do
      if v <> sink && dist.(v) > dist.(!source) then source := v
    done;
    Some
      {
        name = Printf.sprintf "unit-disk-%d" n;
        graph;
        positions;
        source = !source;
        sink;
      }

let source_sink_distance t =
  match Graph.hop_distance t.graph t.source t.sink with
  | Some d -> d
  | None -> invalid_arg "Topology.source_sink_distance: disconnected"

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %a; source=%d sink=%d@]" t.name Graph.pp t.graph
    t.source t.sink
