type t = {
  n : int;
  adj : int array array;
  num_edges : int;
  (* Lazily computed structural fingerprint; the adjacency is immutable, so
     once computed the memo stays valid.  A concurrent double-compute writes
     the same text twice — benign. *)
  mutable fingerprint_memo : string option;
}

module Int_set = Set.Make (Int)

let create ~n edges =
  if n < 0 then invalid_arg "Graph.create: negative vertex count";
  let sets = Array.make (max n 1) Int_set.empty in
  let check v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.create: vertex %d out of range" v)
  in
  List.iter
    (fun (u, v) ->
      check u;
      check v;
      if u = v then invalid_arg "Graph.create: self-loop";
      sets.(u) <- Int_set.add v sets.(u);
      sets.(v) <- Int_set.add u sets.(v))
    edges;
  let adj =
    Array.init n (fun u -> Array.of_list (Int_set.elements sets.(u)))
  in
  let num_edges =
    Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2
  in
  { n; adj; num_edges; fingerprint_memo = None }

(* Bulk-build path: adjacency handed over as one CSR pair (offsets +
   targets).  Rows are validated, sliced and kept — no per-vertex sets, no
   intermediate edge list — so construction is O(n + m) with small
   constants; a 1000x1000 grid (1M vertices, ~2M edges) builds in well
   under a second.  The sorted-row requirement makes the result
   indistinguishable from [create] on the same edge set. *)
let of_csr ~n ~offsets ~targets =
  if n < 0 then invalid_arg "Graph.of_csr: negative vertex count";
  if Array.length offsets <> n + 1 then
    invalid_arg "Graph.of_csr: offsets must have length n + 1";
  if n > 0 && offsets.(0) <> 0 then
    invalid_arg "Graph.of_csr: offsets must start at 0";
  if n > 0 && offsets.(n) <> Array.length targets then
    invalid_arg "Graph.of_csr: offsets must end at the targets length";
  for u = 0 to n - 1 do
    let lo = offsets.(u) and hi = offsets.(u + 1) in
    if lo > hi then invalid_arg "Graph.of_csr: offsets must be non-decreasing";
    for i = lo to hi - 1 do
      let v = targets.(i) in
      if v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Graph.of_csr: vertex %d out of range" v);
      if v = u then invalid_arg "Graph.of_csr: self-loop";
      if i > lo && targets.(i - 1) >= v then
        invalid_arg "Graph.of_csr: rows must be strictly increasing"
    done
  done;
  let adj =
    Array.init n (fun u ->
        Array.sub targets offsets.(u) (offsets.(u + 1) - offsets.(u)))
  in
  let g =
    { n; adj; num_edges = Array.length targets / 2; fingerprint_memo = None }
  in
  (* Symmetry check via binary search in the mirror row: O(m log degree). *)
  let rec mem a v lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then mem a v (mid + 1) hi
      else mem a v lo mid
    end
  in
  for u = 0 to n - 1 do
    Array.iter
      (fun v ->
        let row = adj.(v) in
        if not (mem row u 0 (Array.length row)) then
          invalid_arg
            (Printf.sprintf "Graph.of_csr: arc %d->%d has no mirror" u v))
      adj.(u)
  done;
  if Array.length targets mod 2 <> 0 then
    invalid_arg "Graph.of_csr: odd arc count cannot be symmetric";
  g

let n g = g.n

let num_edges g = g.num_edges

let neighbours g u =
  if u < 0 || u >= g.n then invalid_arg "Graph.neighbours: vertex out of range";
  g.adj.(u)

let neighbour_list g u = Array.to_list (neighbours g u)

let degree g u = Array.length (neighbours g u)

let mem_edge g u v =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then false
  else begin
    let a = g.adj.(u) in
    (* Binary search in the sorted adjacency array. *)
    let rec search lo hi =
      if lo >= hi then false
      else begin
        let mid = (lo + hi) / 2 in
        if a.(mid) = v then true
        else if a.(mid) < v then search (mid + 1) hi
        else search lo mid
      end
    in
    search 0 (Array.length a)
  end

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    let a = g.adj.(u) in
    for i = Array.length a - 1 downto 0 do
      if u < a.(i) then acc := (u, a.(i)) :: !acc
    done
  done;
  List.sort Slpdas_util.Order.int_pair !acc

let fold_vertices f g init =
  let acc = ref init in
  for u = 0 to g.n - 1 do
    acc := f u !acc
  done;
  !acc

let bfs_distances g src =
  if src < 0 || src >= g.n then
    invalid_arg "Graph.bfs_distances: vertex out of range";
  let dist = Array.make g.n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    Array.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      g.adj.(u)
  done;
  dist

let hop_distance g u v =
  let dist = bfs_distances g u in
  if dist.(v) < 0 then None else Some dist.(v)

let is_connected g =
  if g.n = 0 then true
  else begin
    let dist = bfs_distances g 0 in
    Array.for_all (fun d -> d >= 0) dist
  end

let reachable_from g src ~excluding =
  if src < 0 || src >= g.n then
    invalid_arg "Graph.reachable_from: vertex out of range";
  let seen = Array.make g.n false in
  if not (excluding src) then begin
    let queue = Queue.create () in
    seen.(src) <- true;
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.take queue in
      Array.iter
        (fun v ->
          if (not seen.(v)) && not (excluding v) then begin
            seen.(v) <- true;
            Queue.add v queue
          end)
        g.adj.(u)
    done
  end;
  seen

let connected_components g =
  let assigned = Array.make g.n false in
  let components = ref [] in
  for v = 0 to g.n - 1 do
    if not assigned.(v) then begin
      let members = ref [] in
      let queue = Queue.create () in
      assigned.(v) <- true;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.take queue in
        members := u :: !members;
        Array.iter
          (fun w ->
            if not assigned.(w) then begin
              assigned.(w) <- true;
              Queue.add w queue
            end)
          g.adj.(u)
      done;
      components := List.sort Int.compare !members :: !components
    end
  done;
  List.rev !components

let diameter g =
  if g.n = 0 then 0
  else begin
    let best = ref 0 in
    let disconnected = ref false in
    for u = 0 to g.n - 1 do
      let dist = bfs_distances g u in
      Array.iter
        (fun d -> if d < 0 then disconnected := true else best := max !best d)
        dist
    done;
    if !disconnected then -1 else !best
  end

(* Gathered as a sort-and-dedupe over the (small) concatenation of the
   neighbours' rows rather than an n-bit set: the former costs
   O(d² log d) in the vertex degree d, the latter O(n) per call — which
   turns every all-vertices sweep (DAS fixpoints, collision checks)
   quadratic in the network size.  The output is the same sorted
   duplicate-free list either way. *)
let two_hop_neighbourhood g u =
  let nu = neighbours g u in
  let total =
    Array.fold_left
      (fun acc v -> acc + Array.length g.adj.(v))
      (Array.length nu) nu
  in
  if total = 0 then []
  else begin
    let buf = Array.make total 0 in
    let k = ref 0 in
    Array.iter
      (fun v ->
        buf.(!k) <- v;
        incr k;
        Array.iter
          (fun w ->
            buf.(!k) <- w;
            incr k)
          g.adj.(v))
      nu;
    Array.sort Int.compare buf;
    let acc = ref [] in
    for i = total - 1 downto 0 do
      let x = buf.(i) in
      if x <> u && (i = 0 || buf.(i - 1) <> x) then acc := x :: !acc
    done;
    !acc
  end

let shortest_path_parents g ~dist u =
  if Array.length dist <> g.n then
    invalid_arg "Graph.shortest_path_parents: distance array arity mismatch";
  Array.to_list g.adj.(u)
  |> List.filter (fun m -> dist.(u) > 0 && dist.(m) = dist.(u) - 1)

let shortest_path g ~src ~dst =
  let dist = bfs_distances g dst in
  if dist.(src) < 0 then None
  else begin
    (* Walk the distance gradient from src to dst, taking the least
       neighbour id at every step: deterministic and lexicographically
       least among shortest paths. *)
    let rec walk u acc =
      if u = dst then List.rev (u :: acc)
      else begin
        match shortest_path_parents g ~dist u with
        | [] -> assert false (* dist.(u) >= 1 guarantees a parent *)
        | m :: _ -> walk m (u :: acc)
      end
    in
    Some (walk src [])
  end

let fingerprint g =
  match g.fingerprint_memo with
  | Some fp -> fp
  | None ->
      let h = Slpdas_util.Fnv.create () in
      Slpdas_util.Fnv.add_int h g.n;
      Array.iter
        (fun row ->
          Slpdas_util.Fnv.add_int h (Array.length row);
          Array.iter (Slpdas_util.Fnv.add_int h) row)
        g.adj;
      let fp = "g1-" ^ Slpdas_util.Fnv.hex h in
      g.fingerprint_memo <- Some fp;
      fp

let pp ppf g =
  Format.fprintf ppf "@[<v>graph with %d vertices, %d edges@]" g.n g.num_edges
