(** Concrete WSN deployments: a graph plus node positions and the paper's
    source/sink conventions.

    The paper's evaluation uses square grids (11×11, 15×15, 21×21) with 4.5 m
    spacing and "only vertical and horizontal transmission", i.e. the
    4-connected grid graph, with the top-left node as source and the centre
    node as sink.  Other generators are provided for tests and for exploring
    the protocol beyond the paper's layouts. *)

type t = {
  name : string;
  graph : Graph.t;
  positions : (float * float) array;  (** metres; indexed by node id *)
  source : int;  (** default asset-detecting node *)
  sink : int;  (** base station *)
}

val grid : ?spacing:float -> int -> t
(** [grid dim] is the [dim × dim] 4-connected grid.  Node [r*dim + c] sits at
    row [r], column [c].  Source is node [0] (top-left); sink is the centre
    node ([dim] should be odd for an exact centre; for even [dim] the
    upper-left of the four central nodes is used).  Default [spacing] is
    4.5 m, as in the paper.
    @raise Invalid_argument if [dim < 2]. *)

val grid_coords : dim:int -> int -> int * int
(** [grid_coords ~dim v] is [(row, col)] of node [v] in [grid dim]. *)

val grid_node : dim:int -> row:int -> col:int -> int
(** Inverse of {!grid_coords}.
    @raise Invalid_argument if outside the grid. *)

val grid8 : ?spacing:float -> int -> t
(** [grid8 dim] is the 8-connected (Moore neighbourhood) variant of
    {!grid}: diagonal links as well.  The paper restricts transmission to
    vertical/horizontal; this variant exists for robustness ablations of
    the protocol under denser connectivity. *)

val torus : ?spacing:float -> int -> t
(** [torus dim] is the 4-connected grid with rows and columns wrapped
    around: no boundary, so the slot field of a DAS has no maximal-depth
    corners — an adversarial topology for corner-seeking analyses.  Source
    is node 0 (a farthest node from the sink), sink is the centre node.
    @raise Invalid_argument if [dim < 3]. *)

val line : ?spacing:float -> int -> t
(** [line n] is the path graph on [n] nodes; source node [0], sink node
    [n-1].  @raise Invalid_argument if [n < 2]. *)

val ring : ?spacing:float -> int -> t
(** [ring n] is the cycle on [n] nodes; source node [0], sink node [n/2].
    @raise Invalid_argument if [n < 3]. *)

val random_unit_disk :
  Slpdas_util.Rng.t ->
  n:int ->
  side:float ->
  range:float ->
  max_attempts:int ->
  t option
(** [random_unit_disk rng ~n ~side ~range ~max_attempts] scatters [n] nodes
    uniformly in a [side × side] square and connects pairs within [range]
    metres, retrying until the graph is connected (up to [max_attempts]
    placements).  Source is the node farthest from the sink; sink is the node
    closest to the centre of the square.  [None] if no connected placement
    was found. *)

val source_sink_distance : t -> int
(** Hop distance ∆ss between source and sink.
    @raise Invalid_argument if disconnected. *)

val pp : Format.formatter -> t -> unit
