(** Undirected communication graphs.

    A WSN is modelled as an undirected graph [G = (V, E)] over dense integer
    node identifiers [0 .. n-1] (paper §III-A: uniform circular communication
    range, so links are symmetric).  The structure is immutable after
    construction; adjacency lists are sorted, which makes iteration order —
    and therefore every algorithm built on top — deterministic. *)

type t

val create : n:int -> (int * int) list -> t
(** [create ~n edges] builds a graph on vertices [0 .. n-1].  Self-loops are
    rejected; duplicate and reversed duplicates of an edge are collapsed.
    Convenient for tests and small ad-hoc graphs; generators producing large
    topologies should use {!of_csr}, which skips the edge list and the
    per-vertex set construction entirely.
    @raise Invalid_argument on a vertex out of range or a self-loop. *)

val of_csr : n:int -> offsets:int array -> targets:int array -> t
(** [of_csr ~n ~offsets ~targets] is the O(n + m) bulk-build path: adjacency
    handed over in compressed sparse row form, the adjacency row of vertex
    [u] being [targets.(offsets.(u)) .. targets.(offsets.(u + 1) - 1)].
    [offsets] must have length [n + 1] with [offsets.(0) = 0] and
    [offsets.(n) = Array.length targets]; every row must be strictly
    increasing (sorted, duplicate-free), self-loop free, and symmetric
    ([v] appears in [u]'s row iff [u] appears in [v]'s).  The result is
    indistinguishable from [create] on the same edge set — same sorted
    adjacency, same iteration order — without materialising an
    [(int * int) list]: a 1000x1000 grid (10⁶ vertices, ~2·10⁶ edges)
    constructs in well under a second.
    @raise Invalid_argument on malformed input. *)

val n : t -> int
(** Number of vertices. *)

val num_edges : t -> int

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] is [true] iff [{u,v}] is an edge.  O(log degree). *)

val neighbours : t -> int -> int array
(** [neighbours g u] is the sorted adjacency array of [u].  The returned
    array is owned by the graph and must not be mutated. *)

val neighbour_list : t -> int -> int list
(** [neighbour_list g u] is [neighbours g u] as a fresh list. *)

val degree : t -> int -> int

val edges : t -> (int * int) list
(** All edges with [u < v], lexicographically sorted. *)

val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a

val bfs_distances : t -> int -> int array
(** [bfs_distances g src] is the array of hop distances from [src];
    unreachable vertices map to [-1]. *)

val hop_distance : t -> int -> int -> int option
(** [hop_distance g u v] is the length of a shortest path, if any. *)

val is_connected : t -> bool

val reachable_from : t -> int -> excluding:(int -> bool) -> bool array
(** [reachable_from g src ~excluding] marks the vertices reachable from
    [src] through vertices for which [excluding] is false (the source itself
    included only if not excluded).  Used by fault-injection analyses to
    reason about the surviving subnetwork without materialising a
    subgraph. *)

val connected_components : t -> int list list
(** Vertex sets of the connected components, each sorted, ordered by their
    smallest member. *)

val diameter : t -> int
(** Longest shortest path over all pairs; [-1] for a disconnected graph.

    {b Cost warning}: this is an all-pairs BFS — O(n·(n+m)) time — which is
    minutes-to-hours on graphs beyond a few tens of thousands of vertices
    (a 1000x1000 grid would run ~10⁶ BFS passes of ~3·10⁶ steps each).
    Callers reporting topology statistics must gate it on the vertex count;
    the bench and the CLI skip diameter reporting above their thresholds
    rather than call this accidentally. *)

val two_hop_neighbourhood : t -> int -> int list
(** [two_hop_neighbourhood g u] is the set [CG(u)] of the paper (Def. 1): all
    vertices at hop distance 1 or 2 from [u], excluding [u], sorted.
    O(d² log d) in the degree [d] — independent of [n], so all-vertices
    sweeps (DAS fixpoints, collision checks) stay linear in the network
    size. *)

val shortest_path_parents : t -> dist:int array -> int -> int list
(** [shortest_path_parents g ~dist u] lists the neighbours of [u] that lie on
    a shortest path from [u] towards the root of [dist] (i.e. neighbours [m]
    with [dist.(m) = dist.(u) - 1]), sorted. *)

val shortest_path : t -> src:int -> dst:int -> int list option
(** [shortest_path g ~src ~dst] is one shortest path [src; ...; dst]
    (lexicographically least among shortest paths), if any. *)

val fingerprint : t -> string
(** A structural digest of the graph — vertex count plus every sorted
    adjacency row — stable across machines and OCaml versions (built on
    {!Slpdas_util.Fnv}, never [Hashtbl.hash]).  Two graphs with the same
    fingerprint are the same labelled graph for any practical purpose, so
    the fingerprint can key persistent verification caches.  Computed once
    and memoized (the structure is immutable); the string starts with a
    ["g1-"] version tag so future encoding changes cannot alias old keys. *)

val pp : Format.formatter -> t -> unit
