(* Cmdliner terms and helpers shared by the slp_das_cli subcommands.

   Every subcommand used to declare its own copies of the dimension /
   seed / refinement / attacker arguments; they live here once so that a
   flag rename or a doc fix propagates everywhere, and so new subcommands
   (serve, tune) cannot drift from the established option names. *)

open Cmdliner

let dim_arg =
  let doc = "Grid dimension (the paper uses 11, 15 and 21)." in
  Arg.(value & opt int 11 & info [ "d"; "dim" ] ~docv:"DIM" ~doc)

let seed_arg =
  let doc = "Root random seed." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let sd_arg =
  let doc = "Search distance SD (Table I: 3 or 5)." in
  Arg.(value & opt int 3 & info [ "search-distance" ] ~docv:"SD" ~doc)

let gap_arg =
  let doc =
    "Decoy slot gap for Phase 3 (1 = paper-literal nSlot-1; larger values \
     harden the lure)."
  in
  Arg.(value & opt int 1 & info [ "gap" ] ~docv:"GAP" ~doc)

let slp_arg =
  let doc = "Apply the SLP refinement (Phases 2-3); default protectionless." in
  Arg.(value & flag & info [ "slp" ] ~doc)

let runs_arg =
  let doc = "Number of seeded runs." in
  Arg.(value & opt int 50 & info [ "n"; "runs" ] ~docv:"RUNS" ~doc)

let domains_arg =
  let doc =
    "Worker domains for multi-run commands (default: the hardware's \
     recommended count).  Results are identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let events_json_arg =
  let doc =
    "Write the run's aggregated event-bus counters (broadcasts, deliveries, \
     drops, timer fires, attacker moves, phase transitions) as JSON to FILE."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "events-json" ] ~docv:"FILE" ~doc)

(* Adversary class: shared by simulate/phantom/fake/sector/verify/chaos and
   the serve query language, so every subcommand accepts exactly the
   registry's names and prints the same error for an unknown one. *)
let attacker_cls_conv =
  let parse s =
    match Slpdas_attack.Model.of_string s with
    | Ok cls -> Ok cls
    | Error msg -> Error (`Msg msg)
  in
  let print ppf cls =
    Format.pp_print_string ppf (Slpdas_attack.Model.to_string cls)
  in
  Arg.conv (parse, print)

let attacker_cls_arg =
  let doc =
    Printf.sprintf
      "Adversary class: %s.  $(b,local) is the paper's single eavesdropper; \
       the others observe through the same event-bus interface."
      (String.concat ", " Slpdas_attack.Model.all_names)
  in
  Arg.(
    value
    & opt attacker_cls_conv Slpdas_attack.Model.Local
    & info [ "attacker" ] ~docv:"CLASS" ~doc)

let mc_trials_arg =
  let doc =
    "Monte-Carlo certification trials.  0 (the default) keeps the \
     exhaustive verifier; any non-local $(b,--attacker) class requires a \
     positive trial count."
  in
  Arg.(value & opt int 0 & info [ "mc-trials" ] ~docv:"N" ~doc)

(* The attacker's (R, H, M) budget, one triple of terms. *)
let attacker_args =
  let r =
    Arg.(value & opt int 1 & info [ "r" ] ~docv:"R" ~doc:"Messages heard per move.")
  in
  let h =
    Arg.(value & opt int 0 & info [ "history" ] ~docv:"H" ~doc:"History size.")
  in
  let m =
    Arg.(value & opt int 1 & info [ "m" ] ~docv:"M" ~doc:"Moves per period.")
  in
  (r, h, m)

let cache_dir_arg =
  let doc =
    "Persist verification answers under DIR (versioned byte-stable files); \
     warm runs answer from it without re-verifying."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let topology_of_dim dim = Slpdas_wsn.Topology.grid dim

(* Graph.diameter is all-pairs BFS, O(n·(n+m)); reporting it on a
   paper-scale grid is fine, on a 1000x1000 grid it is hours.  Anything
   that prints it gates on this threshold. *)
let diameter_node_limit = 10_000

let params_of ~sd ~gap =
  { (Slpdas_exp.Params.with_search_distance sd Slpdas_exp.Params.default) with
    Slpdas_exp.Params.refine_gap = gap }

let build_schedule ~topo ~seed ~slp ~sd ~gap =
  let g = topo.Slpdas_wsn.Topology.graph in
  let rng = Slpdas_util.Rng.create seed in
  let das = Slpdas_core.Das_build.build ~rng g ~sink:topo.Slpdas_wsn.Topology.sink in
  if not slp then (das.Slpdas_core.Das_build.schedule, None)
  else begin
    let delta_ss = Slpdas_wsn.Topology.source_sink_distance topo in
    let change_length = max 1 (delta_ss - sd) in
    match
      Slpdas_core.Slp_refine.refine ~rng ~gap g ~das ~search_distance:sd
        ~change_length
    with
    | Some r -> (r.Slpdas_core.Slp_refine.refined, Some r)
    | None -> (das.Slpdas_core.Das_build.schedule, None)
  end

(* [build_das] is the prefix of [build_schedule] that the tuner needs: the
   Phase-1 DAS with its parent tree, before any refinement. *)
let build_das ~topo ~seed =
  let g = topo.Slpdas_wsn.Topology.graph in
  Slpdas_core.Das_build.build ~rng:(Slpdas_util.Rng.create seed) g
    ~sink:topo.Slpdas_wsn.Topology.sink

let write_events_json path counters =
  match path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Slpdas_sim.Event.to_json counters);
    output_char oc '\n';
    close_out oc;
    Format.printf "events: wrote %s@." path

(* Price a run (or the element-wise sum of several runs) in Joules; see
   {!Slpdas_exp.Energy}. *)
let print_energy ?(runs = 1) graph ~broadcasts_by_node ~duration_seconds =
  let report = Slpdas_exp.Energy.of_broadcasts graph ~broadcasts_by_node in
  let per_run = 1.0 /. float_of_int (max 1 runs) in
  Format.printf
    "energy: total %.3f J; hotspot node %d at %.4f J; mean node %.4f J@."
    (report.Slpdas_exp.Energy.total_joules *. per_run)
    report.Slpdas_exp.Energy.hotspot
    (report.Slpdas_exp.Energy.max_node_joules *. per_run)
    (report.Slpdas_exp.Energy.mean_node_joules *. per_run);
  if duration_seconds > 0.0 then
    Format.printf "energy: hotspot lifetime %.0f days on 2xAA@."
      (Slpdas_exp.Energy.lifetime_days report ~duration_seconds)
