(* Command-line interface to the SLP-DAS library.

   Subcommands:
     topology    print a topology and its source/sink/∆ss facts
     schedule    build a DAS schedule (optionally SLP-refined) and check it
     verify      run VerifySchedule (Algorithm 1) against an attacker
     simulate    one full discrete-event run with an attacker
     chaos       seeded fault-injection runs with repair metrics
     experiment  capture-ratio sweeps (the Fig. 5 experiment)
     serve       answer batched verification queries through the cache
     tune        search the (SD, CL) space for the max-delta schedule

   The terms shared across subcommands (dimension, seed, refinement
   knobs, attacker budget, ...) live in Cli_terms. *)

open Cmdliner
open Cli_terms

(* ------------------------------------------------------------------ *)
(* topology                                                           *)
(* ------------------------------------------------------------------ *)

let topology_cmd =
  let run dim =
    let topo = topology_of_dim dim in
    Format.printf "%a@." Slpdas_wsn.Topology.pp topo;
    Format.printf "source-sink distance (dss): %d@."
      (Slpdas_wsn.Topology.source_sink_distance topo);
    let g = topo.Slpdas_wsn.Topology.graph in
    if Slpdas_wsn.Graph.n g <= diameter_node_limit then
      Format.printf "diameter: %d@." (Slpdas_wsn.Graph.diameter g)
    else
      Format.printf "diameter: skipped (all-pairs BFS; > %d nodes)@."
        diameter_node_limit
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Describe a grid topology")
    Term.(const run $ dim_arg)

(* ------------------------------------------------------------------ *)
(* schedule                                                           *)
(* ------------------------------------------------------------------ *)

let schedule_cmd =
  let run dim seed slp sd gap show_grid save =
    let topo = topology_of_dim dim in
    let g = topo.Slpdas_wsn.Topology.graph in
    let schedule, refinement = build_schedule ~topo ~seed ~slp ~sd ~gap in
    (match save with
    | Some path ->
      let oc = open_out path in
      output_string oc (Slpdas_core.Schedule.to_string schedule);
      close_out oc;
      Format.printf "saved to %s@." path
    | None -> ());
    if show_grid then
      Format.printf "%a@." (Slpdas_core.Schedule.pp_grid ~dim) schedule;
    (match refinement with
    | Some r ->
      Format.printf "search path: %s@."
        (String.concat " -> "
           (List.map string_of_int r.Slpdas_core.Slp_refine.search_path));
      Format.printf "change path: %s@."
        (String.concat " -> "
           (List.map string_of_int r.Slpdas_core.Slp_refine.change_path))
    | None -> ());
    let report name violations =
      match violations with
      | [] -> Format.printf "%s: OK@." name
      | vs ->
        Format.printf "%s: %d violation(s)@." name (List.length vs);
        List.iter
          (fun v ->
            Format.printf "  %s@." (Slpdas_core.Das_check.violation_to_string v))
          vs
    in
    report "strong DAS (Def. 2)" (Slpdas_core.Das_check.check_strong g schedule);
    report "weak DAS (Def. 3)" (Slpdas_core.Das_check.check_weak g schedule)
  in
  let grid_arg =
    Arg.(value & flag & info [ "grid" ] ~doc:"Print the slot field as a matrix.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the schedule to FILE.")
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Build and check a DAS schedule")
    Term.(
      const run $ dim_arg $ seed_arg $ slp_arg $ sd_arg $ gap_arg $ grid_arg
      $ save_arg)

(* ------------------------------------------------------------------ *)
(* coverage                                                           *)
(* ------------------------------------------------------------------ *)

let coverage_cmd =
  let run dim seed slp sd gap load =
    let topo = topology_of_dim dim in
    let g = topo.Slpdas_wsn.Topology.graph in
    let schedule =
      match load with
      | Some path ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        begin match Slpdas_core.Schedule.of_string text with
        | Ok s -> s
        | Error reason -> failwith ("could not load schedule: " ^ reason)
        end
      | None -> fst (build_schedule ~topo ~seed ~slp ~sd ~gap)
    in
    let attacker =
      Slpdas_core.Attacker.canonical ~start:topo.Slpdas_wsn.Topology.sink
    in
    let coverage = Slpdas_core.Coverage.analyse g schedule ~attacker in
    Format.printf "protected sources: %d/%d (%.1f%%)@."
      coverage.Slpdas_core.Coverage.protected_sources
      coverage.Slpdas_core.Coverage.total_sources
      (100.0 *. Slpdas_core.Coverage.protected_fraction coverage);
    (match coverage.Slpdas_core.Coverage.min_capture_periods with
    | Some p -> Format.printf "fastest capture: %d periods@." p
    | None -> Format.printf "no source is capturable@.");
    Format.printf "map (.=protected, X=vulnerable, K=sink):@.%a@."
      (Slpdas_core.Coverage.pp_grid ~dim)
      coverage
  in
  let load_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE" ~doc:"Load the schedule from FILE.")
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Certify every node as a potential source (SLP coverage map)")
    Term.(const run $ dim_arg $ seed_arg $ slp_arg $ sd_arg $ gap_arg $ load_arg)

(* ------------------------------------------------------------------ *)
(* verify                                                             *)
(* ------------------------------------------------------------------ *)

let verify_cmd =
  let r_arg, h_arg, m_arg = attacker_args in
  let run dim seed slp sd gap r h m cls mc_trials cache_dir =
    let topo = topology_of_dim dim in
    let g = topo.Slpdas_wsn.Topology.graph in
    let schedule, _ = build_schedule ~topo ~seed ~slp ~sd ~gap in
    let delta_ss = Slpdas_wsn.Topology.source_sink_distance topo in
    let safety_period = Slpdas_core.Safety.safety_periods ~delta_ss () in
    let attacker =
      Slpdas_core.Attacker.make ~r ~h ~m ~start:topo.Slpdas_wsn.Topology.sink ()
    in
    Format.printf "safety period: %d TDMA periods@." safety_period;
    let service = Slpdas_serve.Service.create ?cache_dir () in
    let use_mc = mc_trials > 0 || cls <> Slpdas_attack.Model.Local in
    if use_mc then begin
      (* Exhaustive search does not scale to the non-local classes; certify
         by seeded Monte-Carlo with Wilson bounds instead. *)
      let trials = if mc_trials > 0 then mc_trials else 256 in
      let res =
        Slpdas_serve.Service.mc_certify service g schedule ~cls ~attacker
          ~trials ~seed ~safety_period
          ~source:topo.Slpdas_wsn.Topology.source
      in
      Format.printf "attacker: %s; %d Monte-Carlo trials (seed %d)@."
        (Slpdas_attack.Model.to_string cls)
        res.Slpdas_attack.Mc_verify.trials seed;
      Format.printf
        "capture probability: %.4f (95%% Wilson [%.4f, %.4f]); %d/%d trials@."
        res.Slpdas_attack.Mc_verify.p_hat
        res.Slpdas_attack.Mc_verify.wilson_low
        res.Slpdas_attack.Mc_verify.wilson_high
        res.Slpdas_attack.Mc_verify.captures
        res.Slpdas_attack.Mc_verify.trials;
      match res.Slpdas_attack.Mc_verify.min_periods with
      | Some p -> Format.printf "fastest sampled capture: %d periods@." p
      | None ->
        Format.printf
          "verdict: no trial captured within the safety period@."
    end
    else begin
      let outcome, explored =
        Slpdas_serve.Service.verify_stats service g schedule ~attacker
          ~safety_period ~source:topo.Slpdas_wsn.Topology.source
      in
      (match outcome with
      | Slpdas_core.Verifier.Safe ->
        Format.printf "verdict: SLP-aware (no admissible trace captures)@."
      | Slpdas_core.Verifier.Captured { trace; periods } ->
        Format.printf "verdict: CAPTURED in %d periods@." periods;
        Format.printf "counterexample: %s@."
          (String.concat " -> " (List.map string_of_int trace)));
      Format.printf "explored: %d attacker states@." explored
    end;
    let stats = Slpdas_serve.Service.stats service in
    if
      stats.Slpdas_serve.Service.cache.Slpdas_serve.Cache.disk_hits
      + stats.Slpdas_serve.Service.mc.Slpdas_serve.Cache.disk_hits
      > 0
    then
      Format.printf "(answered from %s)@."
        (Option.value cache_dir ~default:"cache")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run VerifySchedule (Algorithm 1), or certify a non-local attacker \
          by seeded Monte-Carlo")
    Term.(
      const run $ dim_arg $ seed_arg $ slp_arg $ sd_arg $ gap_arg $ r_arg
      $ h_arg $ m_arg $ attacker_cls_arg $ mc_trials_arg $ cache_dir_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                           *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let run dim seed slp sd gap cls trace_count events_json =
    let topo = topology_of_dim dim in
    let mode =
      if slp then Slpdas_core.Protocol.Slp
      else Slpdas_core.Protocol.Protectionless
    in
    let config =
      {
        (Slpdas_exp.Runner.default_config ~topology:topo ~mode ~seed) with
        Slpdas_exp.Runner.params = params_of ~sd ~gap;
        hunter = cls;
      }
    in
    (* Keep only the first [trace_count] transmissions: that is all the
       report prints. *)
    let trace = ref [] in
    let scenario =
      let s = Slpdas_exp.Runner.scenario config in
      if trace_count > 0 then
        Slpdas_exp.Scenario.with_monitor
          (fun engine ->
            Slpdas_sim.Engine.subscribe engine (function
              | Slpdas_sim.Event.Broadcast { time; sender; msg }
                when List.length !trace < trace_count ->
                trace :=
                  (time, sender, Slpdas_core.Messages.describe msg) :: !trace
              | _ -> ()))
          s
      else s
    in
    let r, counters = Slpdas_exp.Harness.run_with_events scenario in
    if trace_count > 0 then begin
      Format.printf "first %d transmissions:@." trace_count;
      List.iter
        (fun (time, sender, label) ->
          Format.printf "  %8.3f  node %-4d %s@." time sender label)
        (List.rev !trace)
    end;
    Format.printf "mode: %s; attacker %s; seed %d; dss=%d; safety period %.1fs@."
      (if slp then "SLP DAS" else "protectionless DAS")
      (Slpdas_attack.Model.to_string cls)
      seed r.Slpdas_exp.Runner.delta_ss r.Slpdas_exp.Runner.safety_seconds;
    Format.printf "schedule: complete=%b strong=%b weak=%b@."
      r.Slpdas_exp.Runner.complete r.Slpdas_exp.Runner.strong_das
      r.Slpdas_exp.Runner.weak_das;
    Format.printf "messages: setup=%d total=%d@." r.Slpdas_exp.Runner.setup_messages
      r.Slpdas_exp.Runner.total_messages;
    Format.printf "attacker path: %s@."
      (String.concat " -> "
         (List.map string_of_int r.Slpdas_exp.Runner.attacker_path));
    print_energy topo.Slpdas_wsn.Topology.graph
      ~broadcasts_by_node:r.Slpdas_exp.Runner.broadcasts_by_node
      ~duration_seconds:r.Slpdas_exp.Runner.duration_seconds;
    write_events_json events_json counters;
    (match (r.Slpdas_exp.Runner.captured, r.Slpdas_exp.Runner.capture_seconds) with
    | true, Some t -> Format.printf "outcome: CAPTURED after %.1fs@." t
    | _ -> Format.printf "outcome: source safe@.")
  in
  let trace_arg =
    Arg.(
      value & opt int 0
      & info [ "trace" ] ~docv:"N"
          ~doc:"Print the first N radio transmissions of the run.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"One full discrete-event run")
    Term.(
      const run $ dim_arg $ seed_arg $ slp_arg $ sd_arg $ gap_arg
      $ attacker_cls_arg $ trace_arg $ events_json_arg)

(* ------------------------------------------------------------------ *)
(* phantom                                                            *)
(* ------------------------------------------------------------------ *)

let phantom_cmd =
  let run dim runs walk_length cls domains events_json =
    let topo = topology_of_dim dim in
    let configs =
      List.init runs (fun seed ->
          {
            Slpdas_exp.Phantom_runner.topology = topo;
            walk_length;
            link = Slpdas_sim.Link_model.Ideal;
            seed;
          })
    in
    let results, counters =
      Slpdas_exp.Phantom_runner.run_many_with_events ?domains ~hunter:cls
        configs
    in
    let captures = ref 0 and times = ref [] and msgs = ref 0 in
    let n_nodes = Slpdas_wsn.Graph.n topo.Slpdas_wsn.Topology.graph in
    let tx_by_node = Array.make n_nodes 0 in
    let duration = ref 0.0 in
    List.iter
      (fun r ->
        if r.Slpdas_exp.Phantom_runner.captured then begin
          incr captures;
          match r.Slpdas_exp.Phantom_runner.capture_seconds with
          | Some t -> times := t :: !times
          | None -> ()
        end;
        msgs := !msgs + r.Slpdas_exp.Phantom_runner.messages_sent;
        Array.iteri
          (fun i c -> tx_by_node.(i) <- tx_by_node.(i) + c)
          r.Slpdas_exp.Phantom_runner.broadcasts_by_node;
        duration := !duration +. r.Slpdas_exp.Phantom_runner.duration_seconds)
      results;
    Format.printf
      "phantom routing (walk %d) on %dx%d over %d runs:@.  capture ratio %.1f%%@."
      walk_length dim dim runs
      (100.0 *. float_of_int !captures /. float_of_int runs);
    (match !times with
    | [] -> ()
    | ts ->
      Format.printf "  mean capture time %.1fs@." (Slpdas_util.Stats.mean ts));
    Format.printf "  mean transmissions per run %d@." (!msgs / max 1 runs);
    print_energy ~runs topo.Slpdas_wsn.Topology.graph
      ~broadcasts_by_node:tx_by_node ~duration_seconds:!duration;
    write_events_json events_json counters
  in
  let walk_arg =
    Arg.(
      value & opt int 5
      & info [ "walk" ] ~docv:"W"
          ~doc:"Directed random-walk length (0 = pure flooding).")
  in
  Cmd.v
    (Cmd.info "phantom"
       ~doc:"Run the routing-layer phantom baseline (related work, SII)")
    Term.(
      const run $ dim_arg $ runs_arg $ walk_arg $ attacker_cls_arg
      $ domains_arg $ events_json_arg)

(* ------------------------------------------------------------------ *)
(* fake sources                                                       *)
(* ------------------------------------------------------------------ *)

let fake_cmd =
  let run dim runs rate cls domains events_json =
    let topo = topology_of_dim dim in
    let corners = Slpdas_core.Fake_source.opposite_corners topo ~dim in
    let configs =
      List.init runs (fun seed ->
          {
            Slpdas_exp.Fake_runner.topology = topo;
            fake_sources = corners;
            fake_rate_multiplier = rate;
            link = Slpdas_sim.Link_model.Ideal;
            seed;
          })
    in
    let results, counters =
      Slpdas_exp.Fake_runner.run_many_with_events ?domains ~hunter:cls configs
    in
    let captures = ref 0 and msgs = ref 0 and real = ref 0 in
    let n_nodes = Slpdas_wsn.Graph.n topo.Slpdas_wsn.Topology.graph in
    let tx_by_node = Array.make n_nodes 0 in
    let duration = ref 0.0 in
    List.iter
      (fun r ->
        if r.Slpdas_exp.Fake_runner.captured then incr captures;
        msgs := !msgs + r.Slpdas_exp.Fake_runner.messages_sent;
        real := !real + r.Slpdas_exp.Fake_runner.real_delivered;
        Array.iteri
          (fun i c -> tx_by_node.(i) <- tx_by_node.(i) + c)
          r.Slpdas_exp.Fake_runner.broadcasts_by_node;
        duration := !duration +. r.Slpdas_exp.Fake_runner.duration_seconds)
      results;
    Format.printf
      "fake sources at %s (rate x%.1f) on %dx%d over %d runs:@."
      (String.concat "," (List.map string_of_int corners))
      rate dim dim runs;
    Format.printf "  capture ratio %.1f%%@."
      (100.0 *. float_of_int !captures /. float_of_int runs);
    Format.printf "  transmissions per delivered reading %.0f@."
      (float_of_int !msgs /. float_of_int (max 1 !real));
    print_energy ~runs topo.Slpdas_wsn.Topology.graph
      ~broadcasts_by_node:tx_by_node ~duration_seconds:!duration;
    write_events_json events_json counters
  in
  let rate_arg =
    Arg.(
      value & opt float 1.0
      & info [ "rate" ] ~docv:"X"
          ~doc:"Decoy chatter relative to the source's rate.")
  in
  Cmd.v
    (Cmd.info "fake"
       ~doc:"Run the fake-source baseline (related work, SII refs [10]-[12])")
    Term.(
      const run $ dim_arg $ runs_arg $ rate_arg $ attacker_cls_arg
      $ domains_arg $ events_json_arg)

(* ------------------------------------------------------------------ *)
(* sector phantom                                                     *)
(* ------------------------------------------------------------------ *)

let sector_cmd =
  let run dim runs walk_length num_sectors cls domains events_json =
    let topo = topology_of_dim dim in
    let configs =
      List.init runs (fun seed ->
          {
            Slpdas_exp.Sector_runner.topology = topo;
            walk_length;
            num_sectors;
            link = Slpdas_sim.Link_model.Ideal;
            seed;
          })
    in
    let results, counters =
      Slpdas_exp.Sector_runner.run_many_with_events ?domains ~hunter:cls
        configs
    in
    let captures = ref 0 and times = ref [] and msgs = ref 0 in
    let n_nodes = Slpdas_wsn.Graph.n topo.Slpdas_wsn.Topology.graph in
    let tx_by_node = Array.make n_nodes 0 in
    let duration = ref 0.0 in
    List.iter
      (fun r ->
        if r.Slpdas_exp.Sector_runner.captured then begin
          incr captures;
          match r.Slpdas_exp.Sector_runner.capture_seconds with
          | Some t -> times := t :: !times
          | None -> ()
        end;
        msgs := !msgs + r.Slpdas_exp.Sector_runner.messages_sent;
        Array.iteri
          (fun i c -> tx_by_node.(i) <- tx_by_node.(i) + c)
          r.Slpdas_exp.Sector_runner.broadcasts_by_node;
        duration := !duration +. r.Slpdas_exp.Sector_runner.duration_seconds)
      results;
    Format.printf
      "sector phantom (walk %d, %d sectors) on %dx%d over %d runs:@.  \
       capture ratio %.1f%%@."
      walk_length num_sectors dim dim runs
      (100.0 *. float_of_int !captures /. float_of_int runs);
    (match !times with
    | [] -> ()
    | ts ->
      Format.printf "  mean capture time %.1fs@." (Slpdas_util.Stats.mean ts));
    Format.printf "  mean transmissions per run %d@." (!msgs / max 1 runs);
    print_energy ~runs topo.Slpdas_wsn.Topology.graph
      ~broadcasts_by_node:tx_by_node ~duration_seconds:!duration;
    write_events_json events_json counters
  in
  let walk_arg =
    Arg.(
      value & opt int 5
      & info [ "walk" ] ~docv:"W"
          ~doc:"Sector-directed random-walk length (0 = pure flooding).")
  in
  let sectors_arg =
    Arg.(
      value & opt int 8
      & info [ "sectors" ] ~docv:"S"
          ~doc:"Angular sectors the phantom walk picks from (PSSPR uses 8).")
  in
  Cmd.v
    (Cmd.info "sector"
       ~doc:
         "Run the PSSPR-style sector phantom baseline (related work, third \
          comparison family)")
    Term.(
      const run $ dim_arg $ runs_arg $ walk_arg $ sectors_arg
      $ attacker_cls_arg $ domains_arg $ events_json_arg)

(* ------------------------------------------------------------------ *)
(* chaos                                                              *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let run dim seed runs slp sd gap cls plan_text detect_after crashes domains
      resilience_json events_json =
    let params = params_of ~sd ~gap in
    let plan =
      match plan_text with
      | None -> Slpdas_fault.Churn.churn_plan ~params ~crashes ()
      | Some text ->
        begin match Slpdas_fault.Fault_plan.of_string text with
        | Ok plan -> plan
        | Error reason ->
          Format.eprintf "bad --fault-plan: %s@." reason;
          exit 2
        end
    in
    let mode =
      if slp then Slpdas_core.Protocol.Slp
      else Slpdas_core.Protocol.Protectionless
    in
    let configs =
      List.init runs (fun i ->
          {
            (Slpdas_fault.Churn.default_config ~mode ~attacker:cls ~dim
               ~seed:(seed + i) plan) with
            Slpdas_fault.Churn.params;
            detect_after;
          })
    in
    let reports, counters =
      Slpdas_fault.Churn.run_many_with_events ?domains configs
    in
    Format.printf "fault plan: %s@." (Slpdas_fault.Fault_plan.to_string plan);
    print_string
      (Slpdas_util.Tabular.render ~header:Slpdas_fault.Churn.header
         (List.map Slpdas_fault.Churn.row reports));
    let aggregate =
      Slpdas_fault.Resilience.merge_all
        (List.map Slpdas_fault.Resilience.of_report reports)
    in
    Format.printf "%a@." Slpdas_fault.Resilience.pp aggregate;
    (match resilience_json with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Slpdas_fault.Resilience.to_json aggregate);
      output_char oc '\n';
      close_out oc;
      Format.printf "resilience: wrote %s@." path);
    write_events_json events_json counters
  in
  let plan_arg =
    let doc =
      "Fault plan in the lib/fault DSL, e.g. \
       'crash@250:k=3;revive@400:all;burst@700:0.3,50'.  Defaults to the \
       canonical churn plan (random crashes mid-provisioning)."
    in
    Arg.(value & opt (some string) None & info [ "fault-plan" ] ~docv:"PLAN" ~doc)
  in
  let detect_arg =
    let doc =
      "Failure-detection latency in seconds (default: one dissemination \
       period)."
    in
    Arg.(
      value & opt (some float) None & info [ "detect-after" ] ~docv:"SECS" ~doc)
  in
  let crashes_arg =
    let doc = "Crash count for the default plan (ignored with --fault-plan)." in
    Arg.(value & opt int 3 & info [ "crashes" ] ~docv:"K" ~doc)
  in
  let resilience_json_arg =
    let doc = "Write the aggregated resilience counters as JSON to FILE." in
    Arg.(
      value
      & opt (some string) None
      & info [ "resilience-json" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Seeded fault-injection runs with schedule-repair metrics")
    Term.(
      const run $ dim_arg $ seed_arg $ runs_arg $ slp_arg $ sd_arg $ gap_arg
      $ attacker_cls_arg $ plan_arg $ detect_arg $ crashes_arg $ domains_arg
      $ resilience_json_arg $ events_json_arg)

(* ------------------------------------------------------------------ *)
(* experiment                                                         *)
(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let run dim runs sd gap fast show_params =
    let topo = topology_of_dim dim in
    let params = params_of ~sd ~gap in
    if show_params then begin
      let rows =
        List.map
          (fun (name, sym, _desc, value) -> [ name; sym; value ])
          (Slpdas_exp.Params.table_rows params)
      in
      print_string
        (Slpdas_util.Tabular.render ~header:[ "Parameter"; "Symbol"; "Value" ] rows)
    end;
    let seeds = Slpdas_exp.Capture.seeds ~base:1000 ~runs in
    let attacker ~start = Slpdas_core.Attacker.canonical ~start in
    let summary mode =
      if fast then
        Slpdas_exp.Capture.centralized ~topology:topo ~mode ~params ~attacker
          ~seeds ()
      else
        Slpdas_exp.Capture.simulated ~topology:topo ~mode ~params
          ~link:Slpdas_sim.Link_model.Ideal ~attacker ~seeds ()
    in
    let prot = summary Slpdas_core.Protocol.Protectionless in
    let slp = summary Slpdas_core.Protocol.Slp in
    let row name (s : Slpdas_exp.Capture.summary) =
      let lo, hi = s.Slpdas_exp.Capture.ci95 in
      [
        name;
        Printf.sprintf "%.1f%%" (Slpdas_exp.Capture.ratio_percent s);
        Printf.sprintf "[%.1f, %.1f]" (100. *. lo) (100. *. hi);
        string_of_int s.Slpdas_exp.Capture.captures;
        string_of_int s.Slpdas_exp.Capture.runs;
        Printf.sprintf "%.0f" s.Slpdas_exp.Capture.mean_setup_messages;
      ]
    in
    print_string
      (Slpdas_util.Tabular.render
         ~header:[ "algorithm"; "capture"; "95% CI"; "captures"; "runs"; "setup msgs" ]
         [ row "Protectionless DAS" prot; row "SLP DAS" slp ])
  in
  let fast_arg =
    Arg.(
      value & flag
      & info [ "fast" ]
          ~doc:
            "Use the centralized construction + Algorithm 1 instead of the \
             full discrete-event simulation.")
  in
  let show_params_arg =
    Arg.(value & flag & info [ "show-params" ] ~doc:"Print Table I first.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Capture-ratio experiment (Fig. 5)")
    Term.(
      const run $ dim_arg $ runs_arg $ sd_arg $ gap_arg $ fast_arg
      $ show_params_arg)

(* ------------------------------------------------------------------ *)
(* scale                                                              *)
(* ------------------------------------------------------------------ *)

(* Wave-flooding workload for the sharded engine: local node 0 of each
   cell floods a counter every simulated second. *)
let scale_wave_program ~self =
  let go_timer = Slpdas_gcn.Timer.intern "scale-wave" in
  let init ~self =
    ( 0,
      if self = 0 then
        [ Slpdas_gcn.Set_timer { timer = go_timer; after = 1.0 } ]
      else [] )
  in
  let go =
    {
      Slpdas_gcn.name = "go";
      handler =
        (fun ~self:_ wave trigger ->
          match trigger with
          | Slpdas_gcn.Timeout t when Slpdas_gcn.Timer.equal t go_timer ->
            Some
              ( wave + 1,
                [
                  Slpdas_gcn.Broadcast (wave + 1);
                  Slpdas_gcn.Set_timer { timer = go_timer; after = 1.0 };
                ] )
          | _ -> None);
    }
  in
  let forward =
    {
      Slpdas_gcn.name = "forward";
      handler =
        (fun ~self:_ wave trigger ->
          match trigger with
          | Slpdas_gcn.Receive { msg; _ } when msg > wave ->
            Some (msg, [ Slpdas_gcn.Broadcast msg ])
          | _ -> None);
    }
  in
  ignore self;
  { Slpdas_gcn.init; actions = [ go; forward ]; spontaneous = [] }

let scale_cmd =
  let run dim seed cells domains until couple json =
    (* Wall-clock reads here only feed the human-readable progress report;
       the --json observables (what scale-smoke diffs) carry no timings. *)
    let wall f =
      (* slp-lint: allow wall-clock *)
      let t0 = Unix.gettimeofday () in
      let v = f () in
      (* slp-lint: allow wall-clock *)
      (v, Unix.gettimeofday () -. t0)
    in
    let topo, topo_s = wall (fun () -> topology_of_dim dim) in
    let g = topo.Slpdas_wsn.Topology.graph in
    let sink = topo.Slpdas_wsn.Topology.sink in
    let n = Slpdas_wsn.Graph.n g in
    Format.printf "grid %dx%d: %d nodes, %d edges (built in %.3f s)@." dim dim
      n
      (Slpdas_wsn.Graph.num_edges g)
      topo_s;
    (* Compact builder: the minutes-scale paper fixpoint is the bench's
       job (BENCH_scale.json); the CLI knob stays seconds-scale. *)
    let das, build_s =
      wall (fun () ->
          Slpdas_core.Das_build.build_compact
            ~rng:(Slpdas_util.Rng.create seed) g ~sink)
    in
    let schedule = das.Slpdas_core.Das_build.schedule in
    let strong = Slpdas_core.Das_check.check_strong g schedule in
    Format.printf "DAS (compact builder): %.3f s; period length %d; %s@."
      build_s
      (Slpdas_core.Das_build.schedule_length schedule)
      (match strong with
      | [] -> "strong DAS OK"
      | vs -> Printf.sprintf "%d strong-DAS violation(s)" (List.length vs));
    let attacker = Slpdas_core.Attacker.canonical ~start:sink in
    let verdict, verify_s =
      wall (fun () ->
          Slpdas_core.Verifier.verify g schedule ~attacker
            ~safety_period:(2 * n)
            ~source:topo.Slpdas_wsn.Topology.source)
    in
    let outcome =
      match verdict with
      | Slpdas_core.Verifier.Safe -> "safe"
      | Slpdas_core.Verifier.Captured { periods; _ } ->
        Printf.sprintf "captured@%d" periods
    in
    Format.printf "attacker run (Algorithm 1, safety 2n): %.4f s; %s@."
      verify_s outcome;
    let plan = Slpdas_sim.Shard.plan ~cells_x:cells ~cells_y:cells topo in
    if couple then begin
      let (_, merged), shard_s =
        wall (fun () ->
            Slpdas_sim.Shard.run_coupled ?domains plan
              ~link:Slpdas_sim.Link_model.Ideal ~seed
              ~program:scale_wave_program ~until)
      in
      Format.printf
        "coupled run: %d cells (%d cut links, %d boundary nodes), %.1f s sim \
         in %.3f s wall; %d broadcasts, %d deliveries@."
        (Array.length plan.Slpdas_sim.Shard.cells)
        plan.Slpdas_sim.Shard.cut_links
        (Slpdas_sim.Shard.boundary_nodes plan)
        until shard_s merged.Slpdas_sim.Event.broadcasts
        merged.Slpdas_sim.Event.deliveries;
      match json with
      | None -> ()
      | Some path ->
        (* Coupled observables are cell-count- and domain-count-invariant
           (byte-identical to the unsharded sequential engine), so the JSON
           carries only decomposition-free facts — make couple-smoke diffs
           exactly this file across --cells and --domains. *)
        let oc = open_out path in
        Printf.fprintf oc
          "{\"dim\": %d, \"nodes\": %d, \"edges\": %d, \"period_length\": %d, \
           \"strong_violations\": %d, \"verify_outcome\": %S, \"coupled\": %s}\n"
          dim n
          (Slpdas_wsn.Graph.num_edges g)
          (Slpdas_core.Das_build.schedule_length schedule)
          (List.length strong) outcome
          (Slpdas_sim.Event.to_json merged);
        close_out oc;
        Format.printf "scale: wrote %s@." path
    end
    else begin
      let (per_cell, merged), shard_s =
        wall (fun () ->
            Slpdas_sim.Shard.run ?domains plan
              ~link:Slpdas_sim.Link_model.Ideal ~seed
              ~program:(fun ~cell:_ ~self -> scale_wave_program ~self)
              ~until)
      in
      Format.printf
        "sharded run: %d cells (%d cut links, %d cut arcs), %.1f s sim in \
         %.3f s wall; %d broadcasts, %d deliveries@."
        (Array.length plan.Slpdas_sim.Shard.cells)
        plan.Slpdas_sim.Shard.cut_links plan.Slpdas_sim.Shard.cut_arcs until
        shard_s merged.Slpdas_sim.Event.broadcasts
        merged.Slpdas_sim.Event.deliveries;
      match json with
      | None -> ()
      | Some path ->
        (* Deterministic observables only (no timings): the same file must be
           byte-identical for every --domains value — make scale-smoke diffs
           exactly this. *)
        let boundary =
          String.concat ", "
            (Array.to_list
               (Array.map
                  (fun c -> string_of_int c.Slpdas_sim.Shard.boundary_nodes)
                  plan.Slpdas_sim.Shard.cells))
        in
        let oc = open_out path in
        Printf.fprintf oc
          "{\"dim\": %d, \"nodes\": %d, \"edges\": %d, \"period_length\": %d, \
           \"strong_violations\": %d, \"verify_outcome\": %S, \"cells\": %d, \
           \"cut_edges\": %d, \"cut_links\": %d, \"cut_arcs\": %d, \
           \"boundary_nodes\": [%s], \"sharded\": %s}\n"
          dim n
          (Slpdas_wsn.Graph.num_edges g)
          (Slpdas_core.Das_build.schedule_length schedule)
          (List.length strong) outcome
          (Array.length plan.Slpdas_sim.Shard.cells)
          plan.Slpdas_sim.Shard.cut_edges plan.Slpdas_sim.Shard.cut_links
          plan.Slpdas_sim.Shard.cut_arcs boundary
          (Slpdas_sim.Shard.counters_json per_cell merged);
        close_out oc;
        Format.printf "scale: wrote %s@." path
    end
  in
  let cells_arg =
    Arg.(
      value & opt int 4
      & info [ "cells" ] ~docv:"C"
          ~doc:"Partition the grid into CxC spatial cells for the sharded run.")
  in
  let until_arg =
    Arg.(
      value & opt float 3.0
      & info [ "until" ] ~docv:"SECS"
          ~doc:"Simulated seconds for the sharded engine run.")
  in
  let couple_arg =
    Arg.(
      value & flag
      & info [ "couple" ]
          ~doc:
            "Keep cut edges radio-coupled: run the cells as a conservative \
             parallel discrete-event simulation (lookahead windows, boundary \
             mailboxes) whose observables are byte-identical to the \
             unsharded sequential engine at any $(b,--cells) and \
             $(b,--domains) value.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the run's deterministic observables (schedule facts, \
             verdict, sharded counters; no timings) as JSON to FILE.")
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Large-grid scaling probe: DAS build, attacker verification and a \
          sharded engine run")
    Term.(
      const run $ dim_arg $ seed_arg $ cells_arg $ domains_arg $ until_arg
      $ couple_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                              *)
(* ------------------------------------------------------------------ *)

(* One query per line, whitespace-separated key=value tokens:

     dim=11 seed=1 slp=true sd=3 gap=1 r=1 h=0 m=2 decide=history-avoiding
     dim=11 seed=1 slp=true attacker=global mc=128

   Unknown keys are an error; omitted keys default like the verify
   subcommand's flags ([safety] defaults to Eq. 1 on the line's topology,
   [source] to the topology's source).  [mc=N] (N > 0) switches the line to
   Monte-Carlo certification — mandatory for any non-local [attacker] class,
   whose exhaustive state space explodes.  '#' starts a comment. *)
type serve_query = {
  q_line : int;
  q_dim : int;
  q_seed : int;
  q_slp : bool;
  q_sd : int;
  q_gap : int;
  q_r : int;
  q_h : int;
  q_m : int;
  q_decide : string;
  q_attacker : Slpdas_attack.Model.cls;
  q_mc : int;  (* 0 = exhaustive *)
  q_safety : int option;
  q_source : int option;
}

let parse_serve_query ~line_no line =
  let q =
    ref
      {
        q_line = line_no;
        q_dim = 11;
        q_seed = 1;
        q_slp = false;
        q_sd = 3;
        q_gap = 1;
        q_r = 1;
        q_h = 0;
        q_m = 1;
        q_decide = "lowest-slot";
        q_attacker = Slpdas_attack.Model.Local;
        q_mc = 0;
        q_safety = None;
        q_source = None;
      }
  in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let tokens =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> not (String.equal t ""))
  in
  let parse_int k v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> fail "line %d: %s wants an integer, got %S" line_no k v
  in
  let rec go = function
    | [] -> Ok !q
    | token :: rest ->
      (match String.index_opt token '=' with
      | None -> fail "line %d: expected key=value, got %S" line_no token
      | Some i ->
        let k = String.sub token 0 i in
        let v = String.sub token (i + 1) (String.length token - i - 1) in
        let set_int f = Result.map (fun n -> q := f n) (parse_int k v) in
        let r =
          match k with
          | "dim" -> set_int (fun n -> { !q with q_dim = n })
          | "seed" -> set_int (fun n -> { !q with q_seed = n })
          | "sd" -> set_int (fun n -> { !q with q_sd = n })
          | "gap" -> set_int (fun n -> { !q with q_gap = n })
          | "r" -> set_int (fun n -> { !q with q_r = n })
          | "h" -> set_int (fun n -> { !q with q_h = n })
          | "m" -> set_int (fun n -> { !q with q_m = n })
          | "safety" -> set_int (fun n -> { !q with q_safety = Some n })
          | "source" -> set_int (fun n -> { !q with q_source = Some n })
          | "slp" ->
            (match bool_of_string_opt v with
            | Some b -> Ok (q := { !q with q_slp = b })
            | None -> fail "line %d: slp wants true/false, got %S" line_no v)
          | "decide" ->
            (match Slpdas_serve.Query.decider_of_name v with
            | Some _ -> Ok (q := { !q with q_decide = v })
            | None -> fail "line %d: unknown decider %S" line_no v)
          | "attacker" ->
            (match Slpdas_attack.Model.of_string v with
            | Ok cls -> Ok (q := { !q with q_attacker = cls })
            | Error msg -> fail "line %d: %s" line_no msg)
          | "mc" -> set_int (fun n -> { !q with q_mc = n })
          | _ -> fail "line %d: unknown key %S" line_no k
        in
        Result.bind r (fun () -> go rest))
  in
  Result.bind (go tokens) (fun q ->
      if q.q_attacker <> Slpdas_attack.Model.Local && q.q_mc <= 0 then
        fail "line %d: attacker=%s requires mc=<trials> (> 0)" line_no
          (Slpdas_attack.Model.to_string q.q_attacker)
      else Ok q)

type serve_job =
  | Exhaustive of Slpdas_serve.Batch.item
  | Mc of Slpdas_serve.Batch.mc_item

let serve_job sq =
  let topo = topology_of_dim sq.q_dim in
  let g = topo.Slpdas_wsn.Topology.graph in
  let schedule, _ =
    build_schedule ~topo ~seed:sq.q_seed ~slp:sq.q_slp ~sd:sq.q_sd
      ~gap:sq.q_gap
  in
  let decider =
    (* parse_serve_query already validated the name *)
    Option.get (Slpdas_serve.Query.decider_of_name sq.q_decide)
  in
  let attacker =
    Slpdas_serve.Query.make_attacker decider ~r:sq.q_r ~h:sq.q_h ~m:sq.q_m
      ~start:topo.Slpdas_wsn.Topology.sink
  in
  let safety_period =
    match sq.q_safety with
    | Some p -> p
    | None ->
      Slpdas_core.Safety.safety_periods
        ~delta_ss:(Slpdas_wsn.Topology.source_sink_distance topo) ()
  in
  let source =
    Option.value sq.q_source ~default:topo.Slpdas_wsn.Topology.source
  in
  if sq.q_mc > 0 then
    Mc
      {
        Slpdas_serve.Batch.mc_graph = g;
        mc_schedule = schedule;
        cls = sq.q_attacker;
        mc_attacker = attacker;
        trials = sq.q_mc;
        seed = sq.q_seed;
        mc_safety_period = safety_period;
        mc_source = source;
      }
  else
    Exhaustive
      { Slpdas_serve.Batch.graph = g; schedule; attacker; safety_period;
        source }

type serve_answer =
  | Exhaustive_answer of Slpdas_serve.Query.answer
  | Mc_answer of Slpdas_attack.Mc_verify.result

let print_serve_answer sq answer =
  match answer with
  | Exhaustive_answer a ->
    (match a.Slpdas_serve.Query.outcome with
    | Slpdas_core.Verifier.Safe ->
      Printf.printf "{\"line\": %d, \"outcome\": \"safe\", \"explored\": %d}\n"
        sq.q_line a.Slpdas_serve.Query.explored
    | Slpdas_core.Verifier.Captured { trace; periods } ->
      Printf.printf
        "{\"line\": %d, \"outcome\": \"captured\", \"periods\": %d, \
         \"explored\": %d, \"trace\": [%s]}\n"
        sq.q_line periods a.Slpdas_serve.Query.explored
        (String.concat ", " (List.map string_of_int trace)))
  | Mc_answer r ->
    Printf.printf
      "{\"line\": %d, \"attacker\": %S, \"trials\": %d, \"captures\": %d, \
       \"p_hat\": %.6f, \"wilson_low\": %.6f, \"wilson_high\": %.6f, \
       \"min_periods\": %s}\n"
      sq.q_line
      (Slpdas_attack.Model.to_string sq.q_attacker)
      r.Slpdas_attack.Mc_verify.trials r.Slpdas_attack.Mc_verify.captures
      r.Slpdas_attack.Mc_verify.p_hat r.Slpdas_attack.Mc_verify.wilson_low
      r.Slpdas_attack.Mc_verify.wilson_high
      (match r.Slpdas_attack.Mc_verify.min_periods with
      | None -> "null"
      | Some p -> string_of_int p)

let serve_cmd =
  let run file cache_dir domains =
    let ic, close =
      match file with
      | None | Some "-" -> (stdin, fun () -> ())
      | Some path ->
        let ic = open_in path in
        (ic, fun () -> close_in ic)
    in
    let queries = ref [] in
    let line_no = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr line_no;
         let trimmed = String.trim line in
         if
           (not (String.equal trimmed ""))
           && not (String.length trimmed > 0 && trimmed.[0] = '#')
         then begin
           match parse_serve_query ~line_no:!line_no trimmed with
           | Ok q -> queries := q :: !queries
           | Error msg ->
             close ();
             prerr_endline msg;
             exit 2
         end
       done
     with End_of_file -> close ());
    let queries = List.rev !queries in
    let jobs = List.map serve_job queries in
    let service = Slpdas_serve.Service.create ?cache_dir () in
    let domains =
      match domains with Some d -> d | None -> Slpdas_util.Pool.recommended ()
    in
    (* Fan each kind through its own batch (both keep cache traffic in this
       domain), then reinterleave answers into input line order. *)
    let exhaustive_rev = ref [] and mc_rev = ref [] in
    List.iter
      (fun job ->
        match job with
        | Exhaustive it -> exhaustive_rev := it :: !exhaustive_rev
        | Mc it -> mc_rev := it :: !mc_rev)
      jobs;
    let exhaustive_answers =
      ref
        (Slpdas_serve.Batch.run_many ~domains service
           (List.rev !exhaustive_rev))
    in
    let mc_answers =
      ref (Slpdas_serve.Batch.run_many_mc ~domains service (List.rev !mc_rev))
    in
    let answers =
      List.map
        (fun job ->
          match job with
          | Exhaustive _ ->
            let a = List.hd !exhaustive_answers in
            exhaustive_answers := List.tl !exhaustive_answers;
            Exhaustive_answer a
          | Mc _ ->
            let a = List.hd !mc_answers in
            mc_answers := List.tl !mc_answers;
            Mc_answer a)
        jobs
    in
    List.iter2 print_serve_answer queries answers;
    (* Stats go to stderr: stdout carries only the semantic answers, so a
       warm rerun is byte-identical to a cold one. *)
    let s = Slpdas_serve.Service.stats service in
    Printf.eprintf
      "serve: %d queries, %d verified, %d memory hits, %d disk hits\n"
      s.Slpdas_serve.Service.served s.Slpdas_serve.Service.computed
      (s.Slpdas_serve.Service.cache.Slpdas_serve.Cache.hits
      + s.Slpdas_serve.Service.mc.Slpdas_serve.Cache.hits)
      (s.Slpdas_serve.Service.cache.Slpdas_serve.Cache.disk_hits
      + s.Slpdas_serve.Service.mc.Slpdas_serve.Cache.disk_hits)
  in
  let file_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Query file, one key=value query per line ('-' or absent: \
             stdin).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Answer batched verification queries (JSON lines) through the \
          cached service")
    Term.(const run $ file_arg $ cache_dir_arg $ domains_arg)

(* ------------------------------------------------------------------ *)
(* tune                                                               *)
(* ------------------------------------------------------------------ *)

let tune_cmd =
  let r_arg, h_arg, m_arg = attacker_args in
  let run dim seed gap r h m budget restarts max_evals cache_dir =
    let topo = topology_of_dim dim in
    let g = topo.Slpdas_wsn.Topology.graph in
    let das = build_das ~topo ~seed in
    let attacker =
      Slpdas_core.Attacker.make ~r ~h ~m ~start:topo.Slpdas_wsn.Topology.sink ()
    in
    let delta_ss = Slpdas_wsn.Topology.source_sink_distance topo in
    let service = Slpdas_serve.Service.create ?cache_dir () in
    let result =
      Slpdas_serve.Tuner.tune ~seed ~restarts ~max_evals ~gap service g ~das
        ~attacker ~source:topo.Slpdas_wsn.Topology.source ~delta_ss
        ~budget_joules:budget
    in
    let rows =
      List.map
        (fun (e : Slpdas_serve.Tuner.eval) ->
          [
            string_of_int e.Slpdas_serve.Tuner.point.Slpdas_serve.Tuner.sd;
            string_of_int e.Slpdas_serve.Tuner.point.Slpdas_serve.Tuner.cl;
            (if e.Slpdas_serve.Tuner.feasible then "yes" else "no");
            string_of_int e.Slpdas_serve.Tuner.delta;
            Printf.sprintf "%.4f" e.Slpdas_serve.Tuner.energy_joules;
            (if e.Slpdas_serve.Tuner.within_budget then "yes" else "no");
          ])
        result.Slpdas_serve.Tuner.evals
    in
    print_string
      (Slpdas_util.Tabular.render
         ~header:[ "SD"; "CL"; "feasible"; "delta"; "energy J"; "in budget" ]
         rows);
    (match result.Slpdas_serve.Tuner.best with
    | None ->
      Format.printf
        "no feasible refinement within %.4f J (delta_ss=%d)@." budget delta_ss
    | Some (e, _sched) ->
      Format.printf
        "best: SD=%d CL=%d with certified delta %d at %.4f J (budget %.4f J)@."
        e.Slpdas_serve.Tuner.point.Slpdas_serve.Tuner.sd
        e.Slpdas_serve.Tuner.point.Slpdas_serve.Tuner.cl
        e.Slpdas_serve.Tuner.delta e.Slpdas_serve.Tuner.energy_joules budget);
    let s = Slpdas_serve.Service.stats service in
    Format.printf "service: %d queries, %d verified, %d cache hits@."
      s.Slpdas_serve.Service.served s.Slpdas_serve.Service.computed
      (s.Slpdas_serve.Service.cache.Slpdas_serve.Cache.hits
      + s.Slpdas_serve.Service.cache.Slpdas_serve.Cache.disk_hits)
  in
  let budget_arg =
    Arg.(
      value & opt float 0.05
      & info [ "budget" ] ~docv:"JOULES"
          ~doc:"Refinement energy budget in Joules.")
  in
  let restarts_arg =
    Arg.(
      value & opt int 2
      & info [ "restarts" ] ~docv:"N" ~doc:"Seeded hill-climb restarts.")
  in
  let max_evals_arg =
    Arg.(
      value & opt int 40
      & info [ "max-evals" ] ~docv:"N"
          ~doc:"Distinct (SD, CL) points to evaluate at most.")
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Search the (SD, CL) refinement space for the max-delta schedule \
          within an energy budget")
    Term.(
      const run $ dim_arg $ seed_arg $ gap_arg $ r_arg $ h_arg $ m_arg
      $ budget_arg $ restarts_arg $ max_evals_arg $ cache_dir_arg)

let () =
  let info =
    Cmd.info "slp_das_cli" ~version:"1.0.0"
      ~doc:"Source-location-privacy-aware data aggregation scheduling"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            topology_cmd;
            schedule_cmd;
            coverage_cmd;
            verify_cmd;
            simulate_cmd;
            phantom_cmd;
            fake_cmd;
            sector_cmd;
            chaos_cmd;
            experiment_cmd;
            scale_cmd;
            serve_cmd;
            tune_cmd;
          ]))
