(* Command-line interface to the SLP-DAS library.

   Subcommands:
     topology    print a topology and its source/sink/∆ss facts
     schedule    build a DAS schedule (optionally SLP-refined) and check it
     verify      run VerifySchedule (Algorithm 1) against an attacker
     simulate    one full discrete-event run with an attacker
     chaos       seeded fault-injection runs with repair metrics
     experiment  capture-ratio sweeps (the Fig. 5 experiment) *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                   *)
(* ------------------------------------------------------------------ *)

let dim_arg =
  let doc = "Grid dimension (the paper uses 11, 15 and 21)." in
  Arg.(value & opt int 11 & info [ "d"; "dim" ] ~docv:"DIM" ~doc)

let seed_arg =
  let doc = "Root random seed." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let sd_arg =
  let doc = "Search distance SD (Table I: 3 or 5)." in
  Arg.(value & opt int 3 & info [ "search-distance" ] ~docv:"SD" ~doc)

let gap_arg =
  let doc =
    "Decoy slot gap for Phase 3 (1 = paper-literal nSlot-1; larger values \
     harden the lure)."
  in
  Arg.(value & opt int 1 & info [ "gap" ] ~docv:"GAP" ~doc)

let slp_arg =
  let doc = "Apply the SLP refinement (Phases 2-3); default protectionless." in
  Arg.(value & flag & info [ "slp" ] ~doc)

let runs_arg =
  let doc = "Number of seeded runs." in
  Arg.(value & opt int 50 & info [ "n"; "runs" ] ~docv:"RUNS" ~doc)

let topology_of_dim dim = Slpdas_wsn.Topology.grid dim

let domains_arg =
  let doc =
    "Worker domains for multi-run commands (default: the hardware's \
     recommended count).  Results are identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let events_json_arg =
  let doc =
    "Write the run's aggregated event-bus counters (broadcasts, deliveries, \
     drops, timer fires, attacker moves, phase transitions) as JSON to FILE."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "events-json" ] ~docv:"FILE" ~doc)

let write_events_json path counters =
  match path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Slpdas_sim.Event.to_json counters);
    output_char oc '\n';
    close_out oc;
    Format.printf "events: wrote %s@." path

(* Price a run (or the element-wise sum of several runs) in Joules; see
   {!Slpdas_exp.Energy}. *)
let print_energy ?(runs = 1) graph ~broadcasts_by_node ~duration_seconds =
  let report = Slpdas_exp.Energy.of_broadcasts graph ~broadcasts_by_node in
  let per_run = 1.0 /. float_of_int (max 1 runs) in
  Format.printf
    "energy: total %.3f J; hotspot node %d at %.4f J; mean node %.4f J@."
    (report.Slpdas_exp.Energy.total_joules *. per_run)
    report.Slpdas_exp.Energy.hotspot
    (report.Slpdas_exp.Energy.max_node_joules *. per_run)
    (report.Slpdas_exp.Energy.mean_node_joules *. per_run);
  if duration_seconds > 0.0 then
    Format.printf "energy: hotspot lifetime %.0f days on 2xAA@."
      (Slpdas_exp.Energy.lifetime_days report ~duration_seconds)

let params_of ~sd ~gap =
  { (Slpdas_exp.Params.with_search_distance sd Slpdas_exp.Params.default) with
    Slpdas_exp.Params.refine_gap = gap }

let build_schedule ~topo ~seed ~slp ~sd ~gap =
  let g = topo.Slpdas_wsn.Topology.graph in
  let rng = Slpdas_util.Rng.create seed in
  let das = Slpdas_core.Das_build.build ~rng g ~sink:topo.Slpdas_wsn.Topology.sink in
  if not slp then (das.Slpdas_core.Das_build.schedule, None)
  else begin
    let delta_ss = Slpdas_wsn.Topology.source_sink_distance topo in
    let change_length = max 1 (delta_ss - sd) in
    match
      Slpdas_core.Slp_refine.refine ~rng ~gap g ~das ~search_distance:sd
        ~change_length
    with
    | Some r -> (r.Slpdas_core.Slp_refine.refined, Some r)
    | None -> (das.Slpdas_core.Das_build.schedule, None)
  end

(* ------------------------------------------------------------------ *)
(* topology                                                           *)
(* ------------------------------------------------------------------ *)

(* Graph.diameter is all-pairs BFS, O(n·(n+m)); reporting it on a
   paper-scale grid is fine, on a 1000x1000 grid it is hours.  Anything
   that prints it gates on this threshold. *)
let diameter_node_limit = 10_000

let topology_cmd =
  let run dim =
    let topo = topology_of_dim dim in
    Format.printf "%a@." Slpdas_wsn.Topology.pp topo;
    Format.printf "source-sink distance (dss): %d@."
      (Slpdas_wsn.Topology.source_sink_distance topo);
    let g = topo.Slpdas_wsn.Topology.graph in
    if Slpdas_wsn.Graph.n g <= diameter_node_limit then
      Format.printf "diameter: %d@." (Slpdas_wsn.Graph.diameter g)
    else
      Format.printf "diameter: skipped (all-pairs BFS; > %d nodes)@."
        diameter_node_limit
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Describe a grid topology")
    Term.(const run $ dim_arg)

(* ------------------------------------------------------------------ *)
(* schedule                                                           *)
(* ------------------------------------------------------------------ *)

let schedule_cmd =
  let run dim seed slp sd gap show_grid save =
    let topo = topology_of_dim dim in
    let g = topo.Slpdas_wsn.Topology.graph in
    let schedule, refinement = build_schedule ~topo ~seed ~slp ~sd ~gap in
    (match save with
    | Some path ->
      let oc = open_out path in
      output_string oc (Slpdas_core.Schedule.to_string schedule);
      close_out oc;
      Format.printf "saved to %s@." path
    | None -> ());
    if show_grid then
      Format.printf "%a@." (Slpdas_core.Schedule.pp_grid ~dim) schedule;
    (match refinement with
    | Some r ->
      Format.printf "search path: %s@."
        (String.concat " -> "
           (List.map string_of_int r.Slpdas_core.Slp_refine.search_path));
      Format.printf "change path: %s@."
        (String.concat " -> "
           (List.map string_of_int r.Slpdas_core.Slp_refine.change_path))
    | None -> ());
    let report name violations =
      match violations with
      | [] -> Format.printf "%s: OK@." name
      | vs ->
        Format.printf "%s: %d violation(s)@." name (List.length vs);
        List.iter
          (fun v ->
            Format.printf "  %s@." (Slpdas_core.Das_check.violation_to_string v))
          vs
    in
    report "strong DAS (Def. 2)" (Slpdas_core.Das_check.check_strong g schedule);
    report "weak DAS (Def. 3)" (Slpdas_core.Das_check.check_weak g schedule)
  in
  let grid_arg =
    Arg.(value & flag & info [ "grid" ] ~doc:"Print the slot field as a matrix.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the schedule to FILE.")
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Build and check a DAS schedule")
    Term.(
      const run $ dim_arg $ seed_arg $ slp_arg $ sd_arg $ gap_arg $ grid_arg
      $ save_arg)

(* ------------------------------------------------------------------ *)
(* coverage                                                           *)
(* ------------------------------------------------------------------ *)

let coverage_cmd =
  let run dim seed slp sd gap load =
    let topo = topology_of_dim dim in
    let g = topo.Slpdas_wsn.Topology.graph in
    let schedule =
      match load with
      | Some path ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        begin match Slpdas_core.Schedule.of_string text with
        | Ok s -> s
        | Error reason -> failwith ("could not load schedule: " ^ reason)
        end
      | None -> fst (build_schedule ~topo ~seed ~slp ~sd ~gap)
    in
    let attacker =
      Slpdas_core.Attacker.canonical ~start:topo.Slpdas_wsn.Topology.sink
    in
    let coverage = Slpdas_core.Coverage.analyse g schedule ~attacker in
    Format.printf "protected sources: %d/%d (%.1f%%)@."
      coverage.Slpdas_core.Coverage.protected_sources
      coverage.Slpdas_core.Coverage.total_sources
      (100.0 *. Slpdas_core.Coverage.protected_fraction coverage);
    (match coverage.Slpdas_core.Coverage.min_capture_periods with
    | Some p -> Format.printf "fastest capture: %d periods@." p
    | None -> Format.printf "no source is capturable@.");
    Format.printf "map (.=protected, X=vulnerable, K=sink):@.%a@."
      (Slpdas_core.Coverage.pp_grid ~dim)
      coverage
  in
  let load_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE" ~doc:"Load the schedule from FILE.")
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Certify every node as a potential source (SLP coverage map)")
    Term.(const run $ dim_arg $ seed_arg $ slp_arg $ sd_arg $ gap_arg $ load_arg)

(* ------------------------------------------------------------------ *)
(* verify                                                             *)
(* ------------------------------------------------------------------ *)

let attacker_args =
  let r =
    Arg.(value & opt int 1 & info [ "r" ] ~docv:"R" ~doc:"Messages heard per move.")
  in
  let h =
    Arg.(value & opt int 0 & info [ "history" ] ~docv:"H" ~doc:"History size.")
  in
  let m =
    Arg.(value & opt int 1 & info [ "m" ] ~docv:"M" ~doc:"Moves per period.")
  in
  (r, h, m)

let verify_cmd =
  let r_arg, h_arg, m_arg = attacker_args in
  let run dim seed slp sd gap r h m =
    let topo = topology_of_dim dim in
    let g = topo.Slpdas_wsn.Topology.graph in
    let schedule, _ = build_schedule ~topo ~seed ~slp ~sd ~gap in
    let delta_ss = Slpdas_wsn.Topology.source_sink_distance topo in
    let safety_period = Slpdas_core.Safety.safety_periods ~delta_ss () in
    let attacker =
      Slpdas_core.Attacker.make ~r ~h ~m ~start:topo.Slpdas_wsn.Topology.sink ()
    in
    Format.printf "safety period: %d TDMA periods@." safety_period;
    match
      Slpdas_core.Verifier.verify g schedule ~attacker ~safety_period
        ~source:topo.Slpdas_wsn.Topology.source
    with
    | Slpdas_core.Verifier.Safe ->
      Format.printf "verdict: SLP-aware (no admissible trace captures)@."
    | Slpdas_core.Verifier.Captured { trace; periods } ->
      Format.printf "verdict: CAPTURED in %d periods@." periods;
      Format.printf "counterexample: %s@."
        (String.concat " -> " (List.map string_of_int trace))
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Run VerifySchedule (Algorithm 1)")
    Term.(
      const run $ dim_arg $ seed_arg $ slp_arg $ sd_arg $ gap_arg $ r_arg
      $ h_arg $ m_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                           *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let run dim seed slp sd gap trace_count events_json =
    let topo = topology_of_dim dim in
    let mode =
      if slp then Slpdas_core.Protocol.Slp
      else Slpdas_core.Protocol.Protectionless
    in
    let config =
      {
        (Slpdas_exp.Runner.default_config ~topology:topo ~mode ~seed) with
        Slpdas_exp.Runner.params = params_of ~sd ~gap;
      }
    in
    (* Keep only the first [trace_count] transmissions: that is all the
       report prints. *)
    let trace = ref [] in
    let scenario =
      let s = Slpdas_exp.Runner.scenario config in
      if trace_count > 0 then
        Slpdas_exp.Scenario.with_monitor
          (fun engine ->
            Slpdas_sim.Engine.subscribe engine (function
              | Slpdas_sim.Event.Broadcast { time; sender; msg }
                when List.length !trace < trace_count ->
                trace :=
                  (time, sender, Slpdas_core.Messages.describe msg) :: !trace
              | _ -> ()))
          s
      else s
    in
    let r, counters = Slpdas_exp.Harness.run_with_events scenario in
    if trace_count > 0 then begin
      Format.printf "first %d transmissions:@." trace_count;
      List.iter
        (fun (time, sender, label) ->
          Format.printf "  %8.3f  node %-4d %s@." time sender label)
        (List.rev !trace)
    end;
    Format.printf "mode: %s; seed %d; dss=%d; safety period %.1fs@."
      (if slp then "SLP DAS" else "protectionless DAS")
      seed r.Slpdas_exp.Runner.delta_ss r.Slpdas_exp.Runner.safety_seconds;
    Format.printf "schedule: complete=%b strong=%b weak=%b@."
      r.Slpdas_exp.Runner.complete r.Slpdas_exp.Runner.strong_das
      r.Slpdas_exp.Runner.weak_das;
    Format.printf "messages: setup=%d total=%d@." r.Slpdas_exp.Runner.setup_messages
      r.Slpdas_exp.Runner.total_messages;
    Format.printf "attacker path: %s@."
      (String.concat " -> "
         (List.map string_of_int r.Slpdas_exp.Runner.attacker_path));
    print_energy topo.Slpdas_wsn.Topology.graph
      ~broadcasts_by_node:r.Slpdas_exp.Runner.broadcasts_by_node
      ~duration_seconds:r.Slpdas_exp.Runner.duration_seconds;
    write_events_json events_json counters;
    (match (r.Slpdas_exp.Runner.captured, r.Slpdas_exp.Runner.capture_seconds) with
    | true, Some t -> Format.printf "outcome: CAPTURED after %.1fs@." t
    | _ -> Format.printf "outcome: source safe@.")
  in
  let trace_arg =
    Arg.(
      value & opt int 0
      & info [ "trace" ] ~docv:"N"
          ~doc:"Print the first N radio transmissions of the run.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"One full discrete-event run")
    Term.(
      const run $ dim_arg $ seed_arg $ slp_arg $ sd_arg $ gap_arg $ trace_arg
      $ events_json_arg)

(* ------------------------------------------------------------------ *)
(* phantom                                                            *)
(* ------------------------------------------------------------------ *)

let phantom_cmd =
  let run dim runs walk_length domains events_json =
    let topo = topology_of_dim dim in
    let configs =
      List.init runs (fun seed ->
          {
            Slpdas_exp.Phantom_runner.topology = topo;
            walk_length;
            link = Slpdas_sim.Link_model.Ideal;
            seed;
          })
    in
    let results, counters =
      Slpdas_exp.Phantom_runner.run_many_with_events ?domains configs
    in
    let captures = ref 0 and times = ref [] and msgs = ref 0 in
    let n_nodes = Slpdas_wsn.Graph.n topo.Slpdas_wsn.Topology.graph in
    let tx_by_node = Array.make n_nodes 0 in
    let duration = ref 0.0 in
    List.iter
      (fun r ->
        if r.Slpdas_exp.Phantom_runner.captured then begin
          incr captures;
          match r.Slpdas_exp.Phantom_runner.capture_seconds with
          | Some t -> times := t :: !times
          | None -> ()
        end;
        msgs := !msgs + r.Slpdas_exp.Phantom_runner.messages_sent;
        Array.iteri
          (fun i c -> tx_by_node.(i) <- tx_by_node.(i) + c)
          r.Slpdas_exp.Phantom_runner.broadcasts_by_node;
        duration := !duration +. r.Slpdas_exp.Phantom_runner.duration_seconds)
      results;
    Format.printf
      "phantom routing (walk %d) on %dx%d over %d runs:@.  capture ratio %.1f%%@."
      walk_length dim dim runs
      (100.0 *. float_of_int !captures /. float_of_int runs);
    (match !times with
    | [] -> ()
    | ts ->
      Format.printf "  mean capture time %.1fs@." (Slpdas_util.Stats.mean ts));
    Format.printf "  mean transmissions per run %d@." (!msgs / max 1 runs);
    print_energy ~runs topo.Slpdas_wsn.Topology.graph
      ~broadcasts_by_node:tx_by_node ~duration_seconds:!duration;
    write_events_json events_json counters
  in
  let walk_arg =
    Arg.(
      value & opt int 5
      & info [ "walk" ] ~docv:"W"
          ~doc:"Directed random-walk length (0 = pure flooding).")
  in
  Cmd.v
    (Cmd.info "phantom"
       ~doc:"Run the routing-layer phantom baseline (related work, SII)")
    Term.(
      const run $ dim_arg $ runs_arg $ walk_arg $ domains_arg $ events_json_arg)

(* ------------------------------------------------------------------ *)
(* fake sources                                                       *)
(* ------------------------------------------------------------------ *)

let fake_cmd =
  let run dim runs rate domains events_json =
    let topo = topology_of_dim dim in
    let corners = Slpdas_core.Fake_source.opposite_corners topo ~dim in
    let configs =
      List.init runs (fun seed ->
          {
            Slpdas_exp.Fake_runner.topology = topo;
            fake_sources = corners;
            fake_rate_multiplier = rate;
            link = Slpdas_sim.Link_model.Ideal;
            seed;
          })
    in
    let results, counters =
      Slpdas_exp.Fake_runner.run_many_with_events ?domains configs
    in
    let captures = ref 0 and msgs = ref 0 and real = ref 0 in
    let n_nodes = Slpdas_wsn.Graph.n topo.Slpdas_wsn.Topology.graph in
    let tx_by_node = Array.make n_nodes 0 in
    let duration = ref 0.0 in
    List.iter
      (fun r ->
        if r.Slpdas_exp.Fake_runner.captured then incr captures;
        msgs := !msgs + r.Slpdas_exp.Fake_runner.messages_sent;
        real := !real + r.Slpdas_exp.Fake_runner.real_delivered;
        Array.iteri
          (fun i c -> tx_by_node.(i) <- tx_by_node.(i) + c)
          r.Slpdas_exp.Fake_runner.broadcasts_by_node;
        duration := !duration +. r.Slpdas_exp.Fake_runner.duration_seconds)
      results;
    Format.printf
      "fake sources at %s (rate x%.1f) on %dx%d over %d runs:@."
      (String.concat "," (List.map string_of_int corners))
      rate dim dim runs;
    Format.printf "  capture ratio %.1f%%@."
      (100.0 *. float_of_int !captures /. float_of_int runs);
    Format.printf "  transmissions per delivered reading %.0f@."
      (float_of_int !msgs /. float_of_int (max 1 !real));
    print_energy ~runs topo.Slpdas_wsn.Topology.graph
      ~broadcasts_by_node:tx_by_node ~duration_seconds:!duration;
    write_events_json events_json counters
  in
  let rate_arg =
    Arg.(
      value & opt float 1.0
      & info [ "rate" ] ~docv:"X"
          ~doc:"Decoy chatter relative to the source's rate.")
  in
  Cmd.v
    (Cmd.info "fake"
       ~doc:"Run the fake-source baseline (related work, SII refs [10]-[12])")
    Term.(
      const run $ dim_arg $ runs_arg $ rate_arg $ domains_arg $ events_json_arg)

(* ------------------------------------------------------------------ *)
(* chaos                                                              *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let run dim seed runs slp sd gap plan_text detect_after crashes domains
      resilience_json events_json =
    let params = params_of ~sd ~gap in
    let plan =
      match plan_text with
      | None -> Slpdas_fault.Churn.churn_plan ~params ~crashes ()
      | Some text ->
        begin match Slpdas_fault.Fault_plan.of_string text with
        | Ok plan -> plan
        | Error reason ->
          Format.eprintf "bad --fault-plan: %s@." reason;
          exit 2
        end
    in
    let mode =
      if slp then Slpdas_core.Protocol.Slp
      else Slpdas_core.Protocol.Protectionless
    in
    let configs =
      List.init runs (fun i ->
          {
            (Slpdas_fault.Churn.default_config ~mode ~dim ~seed:(seed + i) plan) with
            Slpdas_fault.Churn.params;
            detect_after;
          })
    in
    let reports, counters =
      Slpdas_fault.Churn.run_many_with_events ?domains configs
    in
    Format.printf "fault plan: %s@." (Slpdas_fault.Fault_plan.to_string plan);
    print_string
      (Slpdas_util.Tabular.render ~header:Slpdas_fault.Churn.header
         (List.map Slpdas_fault.Churn.row reports));
    let aggregate =
      Slpdas_fault.Resilience.merge_all
        (List.map Slpdas_fault.Resilience.of_report reports)
    in
    Format.printf "%a@." Slpdas_fault.Resilience.pp aggregate;
    (match resilience_json with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Slpdas_fault.Resilience.to_json aggregate);
      output_char oc '\n';
      close_out oc;
      Format.printf "resilience: wrote %s@." path);
    write_events_json events_json counters
  in
  let plan_arg =
    let doc =
      "Fault plan in the lib/fault DSL, e.g. \
       'crash@250:k=3;revive@400:all;burst@700:0.3,50'.  Defaults to the \
       canonical churn plan (random crashes mid-provisioning)."
    in
    Arg.(value & opt (some string) None & info [ "fault-plan" ] ~docv:"PLAN" ~doc)
  in
  let detect_arg =
    let doc =
      "Failure-detection latency in seconds (default: one dissemination \
       period)."
    in
    Arg.(
      value & opt (some float) None & info [ "detect-after" ] ~docv:"SECS" ~doc)
  in
  let crashes_arg =
    let doc = "Crash count for the default plan (ignored with --fault-plan)." in
    Arg.(value & opt int 3 & info [ "crashes" ] ~docv:"K" ~doc)
  in
  let resilience_json_arg =
    let doc = "Write the aggregated resilience counters as JSON to FILE." in
    Arg.(
      value
      & opt (some string) None
      & info [ "resilience-json" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Seeded fault-injection runs with schedule-repair metrics")
    Term.(
      const run $ dim_arg $ seed_arg $ runs_arg $ slp_arg $ sd_arg $ gap_arg
      $ plan_arg $ detect_arg $ crashes_arg $ domains_arg $ resilience_json_arg
      $ events_json_arg)

(* ------------------------------------------------------------------ *)
(* experiment                                                         *)
(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let run dim runs sd gap fast show_params =
    let topo = topology_of_dim dim in
    let params = params_of ~sd ~gap in
    if show_params then begin
      let rows =
        List.map
          (fun (name, sym, _desc, value) -> [ name; sym; value ])
          (Slpdas_exp.Params.table_rows params)
      in
      print_string
        (Slpdas_util.Tabular.render ~header:[ "Parameter"; "Symbol"; "Value" ] rows)
    end;
    let seeds = Slpdas_exp.Capture.seeds ~base:1000 ~runs in
    let attacker ~start = Slpdas_core.Attacker.canonical ~start in
    let summary mode =
      if fast then
        Slpdas_exp.Capture.centralized ~topology:topo ~mode ~params ~attacker
          ~seeds ()
      else
        Slpdas_exp.Capture.simulated ~topology:topo ~mode ~params
          ~link:Slpdas_sim.Link_model.Ideal ~attacker ~seeds ()
    in
    let prot = summary Slpdas_core.Protocol.Protectionless in
    let slp = summary Slpdas_core.Protocol.Slp in
    let row name (s : Slpdas_exp.Capture.summary) =
      let lo, hi = s.Slpdas_exp.Capture.ci95 in
      [
        name;
        Printf.sprintf "%.1f%%" (Slpdas_exp.Capture.ratio_percent s);
        Printf.sprintf "[%.1f, %.1f]" (100. *. lo) (100. *. hi);
        string_of_int s.Slpdas_exp.Capture.captures;
        string_of_int s.Slpdas_exp.Capture.runs;
        Printf.sprintf "%.0f" s.Slpdas_exp.Capture.mean_setup_messages;
      ]
    in
    print_string
      (Slpdas_util.Tabular.render
         ~header:[ "algorithm"; "capture"; "95% CI"; "captures"; "runs"; "setup msgs" ]
         [ row "Protectionless DAS" prot; row "SLP DAS" slp ])
  in
  let fast_arg =
    Arg.(
      value & flag
      & info [ "fast" ]
          ~doc:
            "Use the centralized construction + Algorithm 1 instead of the \
             full discrete-event simulation.")
  in
  let show_params_arg =
    Arg.(value & flag & info [ "show-params" ] ~doc:"Print Table I first.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Capture-ratio experiment (Fig. 5)")
    Term.(
      const run $ dim_arg $ runs_arg $ sd_arg $ gap_arg $ fast_arg
      $ show_params_arg)

(* ------------------------------------------------------------------ *)
(* scale                                                              *)
(* ------------------------------------------------------------------ *)

(* Wave-flooding workload for the sharded engine: local node 0 of each
   cell floods a counter every simulated second. *)
let scale_wave_program ~self =
  let go_timer = Slpdas_gcn.Timer.intern "scale-wave" in
  let init ~self =
    ( 0,
      if self = 0 then
        [ Slpdas_gcn.Set_timer { timer = go_timer; after = 1.0 } ]
      else [] )
  in
  let go =
    {
      Slpdas_gcn.name = "go";
      handler =
        (fun ~self:_ wave trigger ->
          match trigger with
          | Slpdas_gcn.Timeout t when Slpdas_gcn.Timer.equal t go_timer ->
            Some
              ( wave + 1,
                [
                  Slpdas_gcn.Broadcast (wave + 1);
                  Slpdas_gcn.Set_timer { timer = go_timer; after = 1.0 };
                ] )
          | _ -> None);
    }
  in
  let forward =
    {
      Slpdas_gcn.name = "forward";
      handler =
        (fun ~self:_ wave trigger ->
          match trigger with
          | Slpdas_gcn.Receive { msg; _ } when msg > wave ->
            Some (msg, [ Slpdas_gcn.Broadcast msg ])
          | _ -> None);
    }
  in
  ignore self;
  { Slpdas_gcn.init; actions = [ go; forward ]; spontaneous = [] }

let scale_cmd =
  let run dim seed cells domains until json =
    (* Wall-clock reads here only feed the human-readable progress report;
       the --json observables (what scale-smoke diffs) carry no timings. *)
    let wall f =
      (* slp-lint: allow wall-clock *)
      let t0 = Unix.gettimeofday () in
      let v = f () in
      (* slp-lint: allow wall-clock *)
      (v, Unix.gettimeofday () -. t0)
    in
    let topo, topo_s = wall (fun () -> topology_of_dim dim) in
    let g = topo.Slpdas_wsn.Topology.graph in
    let sink = topo.Slpdas_wsn.Topology.sink in
    let n = Slpdas_wsn.Graph.n g in
    Format.printf "grid %dx%d: %d nodes, %d edges (built in %.3f s)@." dim dim
      n
      (Slpdas_wsn.Graph.num_edges g)
      topo_s;
    (* Compact builder: the minutes-scale paper fixpoint is the bench's
       job (BENCH_scale.json); the CLI knob stays seconds-scale. *)
    let das, build_s =
      wall (fun () ->
          Slpdas_core.Das_build.build_compact
            ~rng:(Slpdas_util.Rng.create seed) g ~sink)
    in
    let schedule = das.Slpdas_core.Das_build.schedule in
    let strong = Slpdas_core.Das_check.check_strong g schedule in
    Format.printf "DAS (compact builder): %.3f s; period length %d; %s@."
      build_s
      (Slpdas_core.Das_build.schedule_length schedule)
      (match strong with
      | [] -> "strong DAS OK"
      | vs -> Printf.sprintf "%d strong-DAS violation(s)" (List.length vs));
    let attacker = Slpdas_core.Attacker.canonical ~start:sink in
    let verdict, verify_s =
      wall (fun () ->
          Slpdas_core.Verifier.verify g schedule ~attacker
            ~safety_period:(2 * n)
            ~source:topo.Slpdas_wsn.Topology.source)
    in
    let outcome =
      match verdict with
      | Slpdas_core.Verifier.Safe -> "safe"
      | Slpdas_core.Verifier.Captured { periods; _ } ->
        Printf.sprintf "captured@%d" periods
    in
    Format.printf "attacker run (Algorithm 1, safety 2n): %.4f s; %s@."
      verify_s outcome;
    let plan = Slpdas_sim.Shard.plan ~cells_x:cells ~cells_y:cells topo in
    let (per_cell, merged), shard_s =
      wall (fun () ->
          Slpdas_sim.Shard.run ?domains plan
            ~link:Slpdas_sim.Link_model.Ideal ~seed
            ~program:(fun ~cell:_ ~self -> scale_wave_program ~self)
            ~until)
    in
    Format.printf
      "sharded run: %d cells (%d cut edges), %.1f s sim in %.3f s wall; %d \
       broadcasts, %d deliveries@."
      (Array.length plan.Slpdas_sim.Shard.cells)
      plan.Slpdas_sim.Shard.cut_edges until shard_s
      merged.Slpdas_sim.Event.broadcasts merged.Slpdas_sim.Event.deliveries;
    match json with
    | None -> ()
    | Some path ->
      (* Deterministic observables only (no timings): the same file must be
         byte-identical for every --domains value — make scale-smoke diffs
         exactly this. *)
      let oc = open_out path in
      Printf.fprintf oc
        "{\"dim\": %d, \"nodes\": %d, \"edges\": %d, \"period_length\": %d, \
         \"strong_violations\": %d, \"verify_outcome\": %S, \"cells\": %d, \
         \"cut_edges\": %d, \"sharded\": %s}\n"
        dim n
        (Slpdas_wsn.Graph.num_edges g)
        (Slpdas_core.Das_build.schedule_length schedule)
        (List.length strong) outcome
        (Array.length plan.Slpdas_sim.Shard.cells)
        plan.Slpdas_sim.Shard.cut_edges
        (Slpdas_sim.Shard.counters_json per_cell merged);
      close_out oc;
      Format.printf "scale: wrote %s@." path
  in
  let cells_arg =
    Arg.(
      value & opt int 4
      & info [ "cells" ] ~docv:"C"
          ~doc:"Partition the grid into CxC spatial cells for the sharded run.")
  in
  let until_arg =
    Arg.(
      value & opt float 3.0
      & info [ "until" ] ~docv:"SECS"
          ~doc:"Simulated seconds for the sharded engine run.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the run's deterministic observables (schedule facts, \
             verdict, sharded counters; no timings) as JSON to FILE.")
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Large-grid scaling probe: DAS build, attacker verification and a \
          sharded engine run")
    Term.(
      const run $ dim_arg $ seed_arg $ cells_arg $ domains_arg $ until_arg
      $ json_arg)

let () =
  let info =
    Cmd.info "slp_das_cli" ~version:"1.0.0"
      ~doc:"Source-location-privacy-aware data aggregation scheduling"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            topology_cmd;
            schedule_cmd;
            coverage_cmd;
            verify_cmd;
            simulate_cmd;
            phantom_cmd;
            fake_cmd;
            chaos_cmd;
            experiment_cmd;
            scale_cmd;
          ]))
