(* slp-lint CLI: lint every .ml under the given roots with the selected
   analysis tier(s), print diagnostics (human, --json or --sarif) and exit
   non-zero if any survive suppression and the baseline.  See DESIGN.md
   "Static analysis".

   Exit codes partition failure kinds so CI stages can tell them apart:
   0 clean, 1 findings, 2 infrastructure/usage errors (unknown roots or
   rules, unreadable baseline, files that do not parse or type — the
   latter reported on stderr, never mixed into the findings stream). *)

open Slpdas_lint

let default_allowlist_file = ".slp-lint-allowlist"

(* Diagnostics with these rule names are tool failures, not findings. *)
let infra_rule rule = String.equal rule "parse" || String.equal rule "typed-load"

let resolve_rules = function
  | None -> Ok Rules.all
  | Some spec ->
    let names =
      String.split_on_char ',' spec
      |> List.map String.trim
      |> List.filter (fun s -> not (String.equal s ""))
    in
    let unknown =
      List.filter (fun n -> Option.is_none (Rules.find n)) names
    in
    if not (List.is_empty unknown) then
      Error
        (Printf.sprintf "unknown rule(s): %s (known: %s)"
           (String.concat ", " unknown)
           (String.concat ", " Rules.names))
    else Ok (List.filter_map Rules.find names)

let resolve_allowlist = function
  | Some path ->
    if Sys.file_exists path then
      Result.map_error
        (fun e -> Printf.sprintf "%s: %s" path e)
        (Suppress.parse_allowlist (Driver.read_file path))
    else Error (Printf.sprintf "allowlist %s does not exist" path)
  | None ->
    if Sys.file_exists default_allowlist_file then
      Result.map_error
        (fun e -> Printf.sprintf "%s: %s" default_allowlist_file e)
        (Suppress.parse_allowlist (Driver.read_file default_allowlist_file))
    else Ok (Suppress.empty_allowlist ())

let resolve_baseline = function
  | None -> Ok None
  | Some path ->
    if Sys.file_exists path then
      Result.fold
        ~ok:(fun b -> Ok (Some b))
        ~error:(fun e -> Error (Printf.sprintf "%s: %s" path e))
        (Baseline.parse (Driver.read_file path))
    else Error (Printf.sprintf "baseline %s does not exist" path)

let list_rules () =
  List.iter
    (fun r ->
      print_string r.Rules.name;
      print_string " (";
      print_string (Rules.tier_name r.Rules.tier);
      print_string ")\n  ";
      print_string r.Rules.summary;
      print_newline ())
    Rules.all;
  0

let write_file path contents =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

let lint roots json tier_name cmt_root rules_spec allowlist_path baseline_path
    write_baseline_path sarif_path list_rules_flag =
  if list_rules_flag then list_rules ()
  else
    let ( let* ) r f =
      match r with
      | Error e ->
        prerr_endline ("slp-lint: " ^ e);
        2
      | Ok v -> f v
    in
    let* rules = resolve_rules rules_spec in
    let* tier =
      Option.to_result
        ~none:
          (Printf.sprintf "unknown tier %s (expected syntactic, typed or both)"
             tier_name)
        (Driver.tier_of_string tier_name)
    in
    let* allowlist = resolve_allowlist allowlist_path in
    let* baseline = resolve_baseline baseline_path in
    let config = { Driver.rules; allowlist } in
    let* diags =
      match Driver.run_tier config ~tier ~cmt_root ~roots with
      | diags -> Ok diags
      | exception Driver.Unknown_root root ->
        Error (Printf.sprintf "root %s does not exist" root)
    in
    (* Tool failures go to stderr and force exit 2; they are never part of
       the findings stream, the baseline or the SARIF results. *)
    let infra, findings =
      List.partition (fun d -> infra_rule d.Diagnostic.rule) diags
    in
    List.iter (fun d -> prerr_endline (Diagnostic.to_string d)) infra;
    (match write_baseline_path with
    | Some path -> write_file path (Baseline.render findings)
    | None -> ());
    let findings =
      match baseline with
      | Some b -> Baseline.apply b findings
      | None -> findings
    in
    (match sarif_path with
    | Some path -> write_file path (Sarif.render ~rules findings)
    | None -> ());
    let buf = Buffer.create 4096 in
    if json then Reporter.json buf findings else Reporter.human buf findings;
    print_string (Buffer.contents buf);
    if not (List.is_empty infra) then 2
    else if List.is_empty findings then 0
    else 1

open Cmdliner

let roots_arg =
  let doc = "Files or directories to lint (default: lib bin bench)." in
  Arg.(value & pos_all string [ "lib"; "bin"; "bench" ] & info [] ~docv:"PATH" ~doc)

let json_arg =
  let doc = "Emit diagnostics as JSON instead of compiler-style lines." in
  Arg.(value & flag & info [ "json" ] ~doc)

let tier_arg =
  let doc =
    "Analysis tier: $(b,syntactic) (parsetree heuristics, no build needed), \
     $(b,typed) (typedtree analyses over .cmt files — alias-proof resolved \
     paths, interprocedural rng-flow/pool-escape/decider-purity; run \
     $(b,dune build) first), or $(b,both)."
  in
  Arg.(value & opt string "syntactic" & info [ "tier" ] ~docv:"TIER" ~doc)

let cmt_root_arg =
  let doc = "Build tree to load .cmt files from for the typed tier." in
  Arg.(value & opt string "_build/default" & info [ "cmt-root" ] ~docv:"DIR" ~doc)

let rules_arg =
  let doc =
    "Comma-separated rule subset to run (default: every rule). See \
     $(b,--list-rules)."
  in
  Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"RULES" ~doc)

let allowlist_arg =
  let doc =
    "Allowlist file of '<path> <rule>' legacy exemptions (default: \
     .slp-lint-allowlist if present)."
  in
  Arg.(value & opt (some string) None & info [ "allowlist" ] ~docv:"FILE" ~doc)

let baseline_arg =
  let doc =
    "Baseline ratchet file of '<path> <rule> <count>' entries; recorded \
     counts are subtracted so only net-new findings fail the run."
  in
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let write_baseline_arg =
  let doc = "Write the surviving findings to $(docv) as a baseline and \
             continue." in
  Arg.(value & opt (some string) None & info [ "write-baseline" ] ~docv:"FILE" ~doc)

let sarif_arg =
  let doc = "Also write findings to $(docv) as SARIF 2.1.0." in
  Arg.(value & opt (some string) None & info [ "sarif" ] ~docv:"FILE" ~doc)

let list_rules_arg =
  let doc = "Print the rule set with tiers and rationales, then exit." in
  Arg.(value & flag & info [ "list-rules" ] ~doc)

let cmd =
  let doc = "project static analysis for slp-das" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Lints every .ml under the given roots and enforces the project \
         invariants no compiler checks: determinism (no ambient randomness \
         or wall-clock reads, no hash-order-dependent aggregation), domain \
         safety (no unsynchronized mutable captures in pool tasks) and \
         hot-path discipline (no polymorphic compares, no stray stdout). \
         The syntactic tier needs only the sources; the typed tier reads \
         .cmt files from the build tree and adds alias-proof path \
         resolution plus the interprocedural analyses (rng-flow, \
         pool-escape, decider-purity).";
      `P
        "Exits 0 when clean, 1 if any finding survives suppression and the \
         baseline, and 2 on usage or infrastructure errors (unknown roots, \
         files that do not parse or type) — those are reported on stderr, \
         never mixed into the findings stream.";
      `P
        "Suppress a deliberate one-off with a comment: (* slp-lint: allow \
         RULE *) on the offending line or the line above; allow-file makes \
         it file-wide. Legacy surfaces go in .slp-lint-allowlist with a \
         justification comment.";
    ]
  in
  Cmd.v
    (Cmd.info "slp_lint" ~doc ~man)
    Term.(
      const lint $ roots_arg $ json_arg $ tier_arg $ cmt_root_arg $ rules_arg
      $ allowlist_arg $ baseline_arg $ write_baseline_arg $ sarif_arg
      $ list_rules_arg)

let () = exit (Cmd.eval' cmd)
