(* slp-lint CLI: parse every .ml under the given roots, run the project
   rule set, print diagnostics (human or --json) and exit non-zero if any
   survive suppression.  See DESIGN.md "Static analysis". *)

open Slpdas_lint

let default_allowlist_file = ".slp-lint-allowlist"

let resolve_rules = function
  | None -> Ok Rules.all
  | Some spec ->
    let names =
      String.split_on_char ',' spec
      |> List.map String.trim
      |> List.filter (fun s -> not (String.equal s ""))
    in
    let unknown =
      List.filter (fun n -> Option.is_none (Rules.find n)) names
    in
    if not (List.is_empty unknown) then
      Error
        (Printf.sprintf "unknown rule(s): %s (known: %s)"
           (String.concat ", " unknown)
           (String.concat ", " Rules.names))
    else Ok (List.filter_map Rules.find names)

let resolve_allowlist = function
  | Some path ->
    if Sys.file_exists path then
      Result.map_error
        (fun e -> Printf.sprintf "%s: %s" path e)
        (Suppress.parse_allowlist (Driver.read_file path))
    else Error (Printf.sprintf "allowlist %s does not exist" path)
  | None ->
    if Sys.file_exists default_allowlist_file then
      Result.map_error
        (fun e -> Printf.sprintf "%s: %s" default_allowlist_file e)
        (Suppress.parse_allowlist (Driver.read_file default_allowlist_file))
    else Ok (Suppress.empty_allowlist ())

let list_rules () =
  List.iter
    (fun r ->
      print_string r.Rules.name;
      print_string "\n  ";
      print_string r.Rules.summary;
      print_newline ())
    Rules.all;
  0

let lint roots json rules_spec allowlist_path list_rules_flag =
  if list_rules_flag then list_rules ()
  else
    match resolve_rules rules_spec with
    | Error e ->
      prerr_endline ("slp-lint: " ^ e);
      2
    | Ok rules -> (
      match resolve_allowlist allowlist_path with
      | Error e ->
        prerr_endline ("slp-lint: " ^ e);
        2
      | Ok allowlist ->
        let config = { Driver.rules; allowlist } in
        let diags = Driver.run config ~roots in
        let buf = Buffer.create 4096 in
        if json then Reporter.json buf diags else Reporter.human buf diags;
        print_string (Buffer.contents buf);
        if List.is_empty diags then 0 else 1)

open Cmdliner

let roots_arg =
  let doc = "Files or directories to lint (default: lib bin bench)." in
  Arg.(value & pos_all string [ "lib"; "bin"; "bench" ] & info [] ~docv:"PATH" ~doc)

let json_arg =
  let doc = "Emit diagnostics as JSON instead of compiler-style lines." in
  Arg.(value & flag & info [ "json" ] ~doc)

let rules_arg =
  let doc =
    "Comma-separated rule subset to run (default: every rule). See \
     $(b,--list-rules)."
  in
  Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"RULES" ~doc)

let allowlist_arg =
  let doc =
    "Allowlist file of '<path> <rule>' legacy exemptions (default: \
     .slp-lint-allowlist if present)."
  in
  Arg.(value & opt (some string) None & info [ "allowlist" ] ~docv:"FILE" ~doc)

let list_rules_arg =
  let doc = "Print the rule set with rationales and exit." in
  Arg.(value & flag & info [ "list-rules" ] ~doc)

let cmd =
  let doc = "project static analysis for slp-das" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every .ml under the given roots and enforces the project \
         invariants no compiler checks: determinism (no ambient randomness \
         or wall-clock reads, no hash-order-dependent aggregation), domain \
         safety (no unsynchronized mutable captures in pool tasks) and \
         hot-path discipline (no polymorphic compares, no stray stdout). \
         Exits 1 if any diagnostic survives suppression, 2 on usage errors.";
      `P
        "Suppress a deliberate one-off with a comment: (* slp-lint: allow \
         RULE *) on the offending line or the line above; allow-file makes \
         it file-wide. Legacy surfaces go in .slp-lint-allowlist with a \
         justification comment.";
    ]
  in
  Cmd.v
    (Cmd.info "slp_lint" ~doc ~man)
    Term.(
      const lint $ roots_arg $ json_arg $ rules_arg $ allowlist_arg
      $ list_rules_arg)

let () = exit (Cmd.eval' cmd)
